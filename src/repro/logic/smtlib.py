"""SMT-LIB 2 front end for the SUF fragment (QF_UF / QF_IDL / QF_UFIDL).

The decision procedures in this package work on SUF — equality, ``<``,
uninterpreted functions, ±constant offsets, ITE.  That fragment is exactly
the intersection of the SMT-LIB logics ``QF_UF`` and ``QF_IDL`` (plus their
union ``QF_UFIDL``), so standard benchmark scripts in those logics can be
run directly:

* ``declare-fun`` / ``declare-const`` for ``Int``- and ``Bool``-sorted
  symbols (functions over ``Int``);
* ``assert`` with ``and or not => = distinct ite let < <= > >=``;
* integer-offset arithmetic: ``(+ t k)``, ``(- t k)``, and difference
  atoms ``(op (- a b) k)``; bare integer literals are interpreted relative
  to a designated zero constant, the standard IDL reduction;
* ``check-sat`` — note SMT-LIB asks for *satisfiability* of the asserted
  conjunction, so it maps to the validity check of its negation.

Anything outside the fragment (multiplication, non-constant sums, arrays,
quantifiers) raises :class:`SmtLibError` with a location message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .terms import (
    And,
    Node,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Not,
    Offset,
    Or,
    PredApp,
    TRUE,
    Term,
    Var,
)
from . import builders as b

__all__ = [
    "SmtLibError",
    "SmtScript",
    "parse_smtlib",
    "check_sat_smtlib",
    "to_smtlib",
    "to_smtlib_script",
]

#: Designated origin for interpreting bare integer literals (IDL shift).
ZERO_NAME = "$smt_zero"

SUPPORTED_LOGICS = ("QF_UF", "QF_IDL", "QF_UFIDL")


class SmtLibError(ValueError):
    """Raised on syntax errors or constructs outside the SUF fragment."""


SExpr = Union[str, List["SExpr"]]


class _Quoted(str):
    """A ``|quoted|`` symbol token: always a name, never an integer
    literal, even when its spelling looks numeric (e.g. ``|0|``)."""


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    buf: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == ";":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "|":  # quoted symbol
            j = text.find("|", i + 1)
            if j < 0:
                raise SmtLibError("unterminated quoted symbol")
            tokens.append(_Quoted(text[i + 1:j]))
            i = j + 1
            continue
        if ch in "()":
            if buf:
                tokens.append("".join(buf))
                buf.clear()
            tokens.append(ch)
        elif ch.isspace():
            if buf:
                tokens.append("".join(buf))
                buf.clear()
        else:
            buf.append(ch)
        i += 1
    if buf:
        tokens.append("".join(buf))
    return tokens


def _read_all(tokens: List[str]) -> List[SExpr]:
    out: List[SExpr] = []
    pos = 0

    def read(pos: int) -> Tuple[SExpr, int]:
        if pos >= len(tokens):
            raise SmtLibError("unexpected end of input")
        tok = tokens[pos]
        if tok == "(":
            items: List[SExpr] = []
            pos += 1
            while pos < len(tokens) and tokens[pos] != ")":
                item, pos = read(pos)
                items.append(item)
            if pos >= len(tokens):
                raise SmtLibError("missing closing parenthesis")
            return items, pos + 1
        if tok == ")":
            raise SmtLibError("unexpected ')'")
        return tok, pos + 1

    while pos < len(tokens):
        sexpr, pos = _read_all_one(tokens, pos, read)
        out.append(sexpr)
    return out


def _read_all_one(
    tokens: List[str],
    pos: int,
    read: Callable[[int], Tuple[SExpr, int]],
) -> Tuple[SExpr, int]:
    return read(pos)


def _int_literal(tok: SExpr) -> Optional[int]:
    if isinstance(tok, str):
        if isinstance(tok, _Quoted):
            return None
        try:
            return int(tok)
        except ValueError:
            return None
    # (- 5) negative literal
    if (
        isinstance(tok, list)
        and len(tok) == 2
        and tok[0] == "-"
        and isinstance(tok[1], str)
    ):
        inner = _int_literal(tok[1])
        if inner is not None:
            return -inner
    return None


@dataclass
class SmtScript:
    """A parsed SMT-LIB script over the SUF fragment."""

    logic: Optional[str] = None
    assertions: List[Formula] = field(default_factory=list)
    int_consts: Dict[str, Var] = field(default_factory=dict)
    bool_consts: Dict[str, BoolVar] = field(default_factory=dict)
    func_sorts: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    check_sat_requested: bool = False
    uses_zero: bool = False

    def conjunction(self) -> Formula:
        return And(*self.assertions)

    def check_sat(self, method: str = "hybrid", **kw: Any) -> str:
        """SMT-LIB semantics: satisfiability of the asserted conjunction.

        Returns ``"sat"``, ``"unsat"`` or ``"unknown"``.
        """
        from ..core.decision import check_validity

        result = check_validity(
            Not(self.conjunction()), method=method, **kw
        )
        if result.valid is True:
            return "unsat"
        if result.valid is False:
            return "sat"
        return "unknown"


class _Parser:
    def __init__(self) -> None:
        self.script = SmtScript()

    # -- declarations -------------------------------------------------------

    def declare(self, name: str, arg_sorts: List[str], ret: str) -> None:
        script = self.script
        if name in script.int_consts or name in script.bool_consts or (
            name in script.func_sorts
        ):
            raise SmtLibError("symbol %r declared twice" % name)
        for sort in arg_sorts:
            if sort != "Int":
                raise SmtLibError(
                    "argument sort %s of %r is outside the fragment"
                    % (sort, name)
                )
        if ret not in ("Int", "Bool"):
            raise SmtLibError("return sort %s is outside the fragment" % ret)
        if not arg_sorts:
            if ret == "Int":
                script.int_consts[name] = Var(name)
            else:
                script.bool_consts[name] = BoolVar(name)
        else:
            script.func_sorts[name] = (len(arg_sorts), ret)

    # -- terms ---------------------------------------------------------------

    def zero(self) -> Var:
        self.script.uses_zero = True
        return Var(ZERO_NAME)

    def term(self, sx: SExpr, env: Dict[str, object]) -> Term:
        value = self.value(sx, env)
        if not isinstance(value, Term):
            raise SmtLibError("expected an Int term, got a Bool: %r" % (sx,))
        return value

    def formula(self, sx: SExpr, env: Dict[str, object]) -> Formula:
        value = self.value(sx, env)
        if not isinstance(value, Formula):
            raise SmtLibError("expected a Bool term, got an Int: %r" % (sx,))
        return value

    def value(self, sx: SExpr, env: Dict[str, object]) -> Any:
        script = self.script
        lit = _int_literal(sx)
        if lit is not None:
            return Offset(self.zero(), lit) if lit else self.zero()
        if isinstance(sx, str):
            if sx in env:
                return env[sx]
            if sx == "true" and not isinstance(sx, _Quoted):
                return TRUE
            if sx == "false" and not isinstance(sx, _Quoted):
                return FALSE
            if sx in script.int_consts:
                return script.int_consts[sx]
            if sx in script.bool_consts:
                return script.bool_consts[sx]
            raise SmtLibError("undeclared symbol %r" % sx)
        if not sx:
            raise SmtLibError("empty application")
        head = sx[0]
        if not isinstance(head, str):
            raise SmtLibError("application head must be a symbol")
        args = sx[1:]

        if head == "let":
            if len(args) != 2 or not isinstance(args[0], list):
                raise SmtLibError("malformed let")
            new_env = dict(env)
            for binding in args[0]:
                if (
                    not isinstance(binding, list)
                    or len(binding) != 2
                    or not isinstance(binding[0], str)
                ):
                    raise SmtLibError("malformed let binding")
                new_env[binding[0]] = self.value(binding[1], env)
            return self.value(args[1], new_env)

        if head in ("and", "or"):
            parts = [self.formula(a, env) for a in args]
            return And(*parts) if head == "and" else Or(*parts)
        if head == "not":
            self._arity(sx, 1)
            return Not(self.formula(args[0], env))
        if head == "=>":
            if len(args) < 2:
                raise SmtLibError("=> needs at least two arguments")
            # Right-associative chain.
            result = self.formula(args[-1], env)
            for a in reversed(args[:-1]):
                result = Implies(self.formula(a, env), result)
            return result
        if head == "xor":
            self._arity(sx, 2)
            return Not(
                Iff(self.formula(args[0], env), self.formula(args[1], env))
            )
        if head == "=":
            values = [self.value(a, env) for a in args]
            return self._chain_equal(values)
        if head == "distinct":
            terms = [self.term(a, env) for a in args]
            return b.distinct(terms)
        if head in ("<", "<=", ">", ">="):
            if len(args) != 2:
                raise SmtLibError("%s expects two arguments" % head)
            lhs = self._difference_operand(args[0], env)
            rhs = self._difference_operand(args[1], env)
            return self._compare(head, lhs, rhs)
        if head == "ite":
            self._arity(sx, 3)
            cond = self.formula(args[0], env)
            then_v = self.value(args[1], env)
            else_v = self.value(args[2], env)
            if isinstance(then_v, Term) and isinstance(else_v, Term):
                return Ite(cond, then_v, else_v)
            if isinstance(then_v, Formula) and isinstance(else_v, Formula):
                return Or(And(cond, then_v), And(Not(cond), else_v))
            raise SmtLibError("ite branches must share a sort")
        if head == "+":
            return self._sum(args, env)
        if head == "-":
            return self._minus(args, env)
        if head in script.func_sorts:
            arity, ret = script.func_sorts[head]
            if len(args) != arity:
                raise SmtLibError(
                    "%r expects %d argument(s), got %d"
                    % (head, arity, len(args))
                )
            terms = [self.term(a, env) for a in args]
            if ret == "Int":
                return FuncApp(head, terms)
            return PredApp(head, terms)
        raise SmtLibError(
            "operator %r is outside the SUF fragment "
            "(QF_UF / QF_IDL / QF_UFIDL subset)" % head
        )

    def _arity(self, sx: List[SExpr], n: int) -> None:
        if len(sx) - 1 != n:
            raise SmtLibError(
                "%s expects %d argument(s), got %d"
                % (sx[0], n, len(sx) - 1)
            )

    def _chain_equal(self, values: Sequence[Any]) -> Formula:
        if len(values) < 2:
            raise SmtLibError("= needs at least two arguments")
        parts: List[Formula] = []
        for lhs, rhs in zip(values, values[1:]):
            if isinstance(lhs, Term) and isinstance(rhs, Term):
                parts.append(Eq(lhs, rhs))
            elif isinstance(lhs, Formula) and isinstance(rhs, Formula):
                parts.append(Iff(lhs, rhs))
            else:
                raise SmtLibError("= arguments must share a sort")
        return And(*parts)

    def _compare(self, op: str, lhs: Term, rhs: Term) -> Formula:
        if op == "<":
            return Lt(lhs, rhs)
        if op == "<=":
            return b.le(lhs, rhs)
        if op == ">":
            return Lt(rhs, lhs)
        return b.ge(lhs, rhs)

    def _sum(self, args: List[SExpr], env: Dict[str, object]) -> Term:
        """``(+ ...)`` where at most one operand is a non-literal term."""
        total = 0
        base: Optional[Term] = None
        for a in args:
            lit = _int_literal(a)
            if lit is not None:
                total += lit
                continue
            value = self.term(a, env)
            if base is not None:
                raise SmtLibError(
                    "sums of two non-constant terms are outside the "
                    "difference-logic fragment"
                )
            base = value
        if base is None:
            return Offset(self.zero(), total) if total else self.zero()
        return Offset(base, total)

    def _minus(self, args: List[SExpr], env: Dict[str, object]) -> Term:
        if len(args) == 1:
            lit = _int_literal(args[0])
            if lit is not None:
                return Offset(self.zero(), -lit) if lit else self.zero()
            raise SmtLibError("unary minus of a non-constant term")
        if len(args) != 2:
            raise SmtLibError("- expects one or two arguments")
        lit = _int_literal(args[1])
        if lit is not None:
            return Offset(self.term(args[0], env), -lit)
        # (- a b): allowed only where a difference is comparable, which
        # _difference_operand handles; as a bare term it is out of scope.
        raise SmtLibError(
            "(- a b) with non-constant b is only supported directly under "
            "a comparison"
        )

    def _difference_operand(self, sx: SExpr, env: Dict[str, object]) -> Term:
        """Operand of a comparison, with ``(- a b)`` difference support.

        ``(op (- a b) k)`` is rewritten to ``(op a (+ b k))`` — sound for
        difference logic.  The rewrite is performed by returning a *pair*
        encoded as ``a`` with the pending subtrahend stored; to keep the
        types simple the caller instead receives the already-shifted term:
        here we only rewrite when the sibling is a literal, detected by
        the caller's usage pattern, so this helper handles the common
        ``(- a b)`` by introducing the zero origin:
        ``a - b  ==  a`` vs ``b`` shifted comparisons.
        """
        if (
            isinstance(sx, list)
            and len(sx) == 3
            and sx[0] == "-"
            and _int_literal(sx[2]) is None
            and _int_literal(sx[1]) is None
        ):
            raise SmtLibError(
                "general term differences are outside the fragment; "
                "rewrite (op (- a b) k) as (op a (+ b k))"
            )
        return self.term(sx, env)

    # -- commands ------------------------------------------------------------

    def command(self, sx: SExpr) -> None:
        script = self.script
        if not isinstance(sx, list) or not sx or not isinstance(sx[0], str):
            raise SmtLibError("malformed command: %r" % (sx,))
        head = sx[0]
        if head == "set-logic":
            if len(sx) != 2 or sx[1] not in SUPPORTED_LOGICS:
                raise SmtLibError(
                    "unsupported logic %r (supported: %s)"
                    % (sx[1:] or "?", ", ".join(SUPPORTED_LOGICS))
                )
            script.logic = sx[1]
        elif head in ("set-info", "set-option", "get-model", "get-info",
                      "exit", "push", "pop", "echo"):
            return  # ignored / no-op commands
        elif head == "declare-fun":
            if len(sx) != 4 or not isinstance(sx[1], str) or not isinstance(
                sx[2], list
            ):
                raise SmtLibError("malformed declare-fun")
            self.declare(
                sx[1],
                [s if isinstance(s, str) else "?" for s in sx[2]],
                sx[3] if isinstance(sx[3], str) else "?",
            )
        elif head == "declare-const":
            if len(sx) != 3 or not isinstance(sx[1], str):
                raise SmtLibError("malformed declare-const")
            self.declare(sx[1], [], sx[2] if isinstance(sx[2], str) else "?")
        elif head == "assert":
            if len(sx) != 2:
                raise SmtLibError("assert expects one argument")
            script.assertions.append(self.formula(sx[1], {}))
        elif head == "check-sat":
            script.check_sat_requested = True
        else:
            raise SmtLibError("unsupported command %r" % head)


def parse_smtlib(text: str) -> SmtScript:
    """Parse an SMT-LIB script into an :class:`SmtScript`."""
    parser = _Parser()
    for sexpr in _read_all(_tokenize(text)):
        parser.command(sexpr)
    return parser.script


def check_sat_smtlib(text: str, method: str = "hybrid", **kw: Any) -> str:
    """One-shot: parse a script and answer its ``check-sat``."""
    return parse_smtlib(text).check_sat(method=method, **kw)


# ---------------------------------------------------------------------------
# Printing (inverse direction: SUF formula -> SMT-LIB 2 script)
# ---------------------------------------------------------------------------


#: Names the reader would mistake for literals or operators when printed
#: bare; `|...|` quoting keeps them plain symbols.
_RESERVED_SYMBOLS = frozenset(
    [
        "true",
        "false",
        "let",
        "ite",
        "and",
        "or",
        "not",
        "xor",
        "distinct",
        "=",
        "=>",
        "<",
        "<=",
        ">",
        ">=",
        "+",
        "-",
        "succ",
        "pred",
    ]
)


def _reads_as_numeral(name: str) -> bool:
    # The reader lexes any int()-parseable token ("5", "-0", "+3") as an
    # integer literal, so such names must be |quoted| to survive.
    try:
        int(name)
    except ValueError:
        return False
    return True


def _smt_symbol(name: str) -> str:
    """Quote a symbol with ``|...|`` when it needs it."""
    simple = (
        name
        and name not in _RESERVED_SYMBOLS
        and not name[0].isdigit()
        and not _reads_as_numeral(name)
        and all(
            ch.isalnum() or ch in "_-.~!@$%^&*+=<>?/" for ch in name
        )
    )
    if simple:
        return name
    if "|" in name or "\\" in name:
        raise SmtLibError("symbol %r is not expressible in SMT-LIB" % name)
    return "|%s|" % name


def to_smtlib(root: Node) -> str:
    """Render a term or formula as an SMT-LIB 2 expression."""
    from .traversal import postorder

    memo: Dict[object, str] = {}
    for node in postorder(root):
        memo[node] = _render_smt(node, memo)
    return memo[root]


def _render_smt(node: Node, memo: Dict[object, str]) -> str:
    if node is TRUE:
        return "true"
    if node is FALSE:
        return "false"
    if isinstance(node, (Var, BoolVar)):
        return _smt_symbol(node.name)
    if isinstance(node, Offset):
        return "(+ %s %d)" % (memo[node.base], node.k)
    if isinstance(node, (FuncApp, PredApp)):
        return "(%s %s)" % (
            _smt_symbol(node.symbol),
            " ".join(memo[a] for a in node.args),
        )
    if isinstance(node, Ite):
        return "(ite %s %s %s)" % (
            memo[node.cond],
            memo[node.then],
            memo[node.els],
        )
    if isinstance(node, Not):
        return "(not %s)" % memo[node.arg]
    if isinstance(node, And):
        return "(and %s)" % " ".join(memo[a] for a in node.args)
    if isinstance(node, Or):
        return "(or %s)" % " ".join(memo[a] for a in node.args)
    if isinstance(node, Implies):
        return "(=> %s %s)" % (memo[node.lhs], memo[node.rhs])
    if isinstance(node, (Iff, Eq)):
        return "(= %s %s)" % (memo[node.lhs], memo[node.rhs])
    if isinstance(node, Lt):
        return "(< %s %s)" % (memo[node.lhs], memo[node.rhs])
    raise SmtLibError("cannot render %r as SMT-LIB" % (type(node),))


def to_smtlib_script(
    formula: Formula,
    negate: bool = True,
    logic: Optional[str] = None,
    comments: Optional[List[str]] = None,
) -> str:
    """A complete SMT-LIB 2 script for ``formula``.

    With ``negate=True`` (the default) the script asserts the *negation*,
    so ``check-sat`` answers ``unsat`` exactly when ``formula`` is valid —
    the convention the ``repro check`` CLI and external solvers share.
    Round-trips through :func:`parse_smtlib`.
    """
    from .traversal import collect_bool_vars, collect_vars, iter_dag

    func_arities: Dict[str, int] = {}
    pred_arities: Dict[str, int] = {}
    has_offsets = False
    has_lt = False
    for node in iter_dag(formula):
        if isinstance(node, FuncApp):
            func_arities[node.symbol] = len(node.args)
        elif isinstance(node, PredApp):
            pred_arities[node.symbol] = len(node.args)
        elif isinstance(node, Offset):
            has_offsets = True
        elif isinstance(node, Lt):
            has_lt = True

    if logic is None:
        has_apps = bool(func_arities or pred_arities)
        if has_offsets or has_lt:
            logic = "QF_UFIDL" if has_apps else "QF_IDL"
        else:
            logic = "QF_UF"

    lines: List[str] = []
    for comment in comments or ():
        for part in comment.splitlines():
            lines.append("; %s" % part)
    lines.append("(set-logic %s)" % logic)
    for var in collect_vars(formula):
        lines.append("(declare-fun %s () Int)" % _smt_symbol(var.name))
    for bvar in collect_bool_vars(formula):
        lines.append("(declare-fun %s () Bool)" % _smt_symbol(bvar.name))
    for symbol in sorted(func_arities):
        lines.append(
            "(declare-fun %s (%s) Int)"
            % (_smt_symbol(symbol), " ".join(["Int"] * func_arities[symbol]))
        )
    for symbol in sorted(pred_arities):
        lines.append(
            "(declare-fun %s (%s) Bool)"
            % (_smt_symbol(symbol), " ".join(["Int"] * pred_arities[symbol]))
        )
    body = Not(formula) if negate else formula
    lines.append("(assert %s)" % to_smtlib(body))
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
