"""Alpha-invariant canonical keys and renamings for SUF formulas.

Two formulas that differ only in the *names* of their symbolic constants,
Boolean constants, and uninterpreted function/predicate symbols describe
the same decision problem: a verdict for one is a verdict for the other,
and a countermodel transfers by renaming.  This module computes

* :func:`canonical_key` — a process-stable structural digest that is
  identical for alpha-equivalent formulas (isomorphic formulas collide by
  construction), and
* :func:`canonicalize` — the renamed representative formula itself plus
  the renaming maps, so a countermodel found for the representative can
  be lifted back to any member of the isomorphism class
  (:func:`lift_interpretation`).

The result cache (:mod:`repro.service.cache`) keys verdicts on the
canonical key; ``solve_batch`` uses the canonical *formula* to dedupe
isomorphism classes inside one batch.

Construction
------------
Symbols are renamed to ``v0, v1, ...`` (integer constants), ``b0, ...``
(Boolean constants), ``f0, ...`` (function symbols) and ``q0, ...``
(predicate symbols) in order of first occurrence along a deterministic
DAG traversal.  Two details make the scheme independent of this process's
interning history (``Eq`` stores its arguments sorted by interning
``uid``, which is *not* stable across processes or renamings):

* a name-blind **shape refinement** (a few Weisfeiler–Lehman-style
  rounds) assigns every symbol a color from its occurrence structure
  only; ``Eq`` children are visited smaller-color-digest first, so the
  traversal order — and hence the first-occurrence numbering — does not
  depend on how ``Eq`` happened to store its arguments;
* the canonical text renders ``Eq`` with its two rendered arguments
  sorted, so the digest is invariant under argument order.

Soundness never depends on the refinement: the canonical form is always
an injective renaming of the input (plus ``Eq`` argument swaps, which
``=`` is symmetric under), so equal canonical *text* implies the same
decision problem.  In rare perfectly-symmetric cases two isomorphic
formulas may still receive different keys — a missed cache hit, never a
wrong verdict.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .semantics import Interpretation
from .terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    Var,
)
from .traversal import postorder

__all__ = [
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    "rename_symbols",
    "lift_interpretation",
]

#: Bumping this invalidates every persisted key (schema evolution).
CANONICAL_VERSION = 1

#: Upper bound on shape-refinement rounds (the loop stops as soon as the
#: color partition stops refining, which for 1-WL is a fixpoint).
_MAX_REFINE_ROUNDS = 32

_KIND_VAR = "var"
_KIND_BOOL = "bool"
_KIND_FUNC = "func"
_KIND_PRED = "pred"

_PREFIX = {
    _KIND_VAR: "v",
    _KIND_BOOL: "b",
    _KIND_FUNC: "f",
    _KIND_PRED: "q",
}


def _digest(*parts: bytes) -> bytes:
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
        h.update(b"\x1f")
    return h.digest()


def _node_symbol(node: Node) -> Optional[Tuple[str, str]]:
    if isinstance(node, Var):
        return (_KIND_VAR, node.name)
    if isinstance(node, BoolVar):
        return (_KIND_BOOL, node.name)
    if isinstance(node, FuncApp):
        return (_KIND_FUNC, node.symbol)
    if isinstance(node, PredApp):
        return (_KIND_PRED, node.symbol)
    return None


def _wl_colors(root: Node) -> Dict[object, bytes]:
    """Name-blind colors for every DAG node and applied symbol.

    Bidirectional Weisfeiler–Lehman refinement over the term DAG plus one
    vertex per applied function/predicate symbol:

    * vertices start from their local, name-blind tag (node kind, offset
      constant, Boolean constant value, symbol arity);
    * each round folds in the multiset of (direction, position, neighbor
      color) over every incident edge — ``Eq``'s two argument positions
      share one label because ``Eq`` stores its arguments sorted by
      interning ``uid``, an artifact that must not influence the result —
      and every application node is linked to its symbol vertex;
    * the loop stops when the color partition stops refining (each new
      color folds in the old one, so refinement is monotone and a stalled
      round is a fixpoint).

    Downward edges give each color its subtree, upward edges its context,
    so two vertices share a final color only if no amount of structural
    information (short of full graph canonization) tells them apart.
    Keys are ``id(node)`` for DAG nodes and ``(kind, name)`` tuples for
    applied symbols; ``Var``/``BoolVar`` leaves are hash-consed (one node
    per name), so their node color doubles as the symbol color.
    """
    nodes = list(postorder(root))
    colors: Dict[object, bytes] = {}
    edges: Dict[object, List[Tuple[bytes, object]]] = {}

    def add_edge(a: object, tag: bytes, b: object) -> None:
        edges.setdefault(a, []).append((b"down:" + tag, b))
        edges.setdefault(b, []).append((b"up:" + tag, a))

    for node in nodes:
        tag: List[bytes] = [type(node).__name__.encode()]
        if isinstance(node, Offset):
            tag.append(str(node.k).encode())
        elif isinstance(node, BoolConst):
            tag.append(str(node.value).encode())
        colors[id(node)] = _digest(*tag)
        edges.setdefault(id(node), [])
        if isinstance(node, (FuncApp, PredApp)):
            symbol = _node_symbol(node)
            if symbol not in colors:
                colors[symbol] = _digest(
                    symbol[0].encode(), str(len(node.args)).encode()
                )
            add_edge(id(node), b"sym", symbol)
        for index, child in enumerate(node.children()):
            position = (
                b"eq" if isinstance(node, Eq) else str(index).encode()
            )
            add_edge(id(node), position, id(child))

    classes = len(set(colors.values()))
    for _ in range(_MAX_REFINE_ROUNDS):
        if classes == len(colors):
            break
        refined: Dict[object, bytes] = {}
        for key, color in colors.items():
            incident = sorted(
                _digest(tag, colors[other]) for tag, other in edges[key]
            )
            refined[key] = _digest(color, *incident)
        colors = refined
        refined_classes = len(set(colors.values()))
        if refined_classes == classes:
            break
        classes = refined_classes
    return colors


def _assign_names(
    root: Node, colors: Dict[object, bytes]
) -> Dict[Tuple[str, str], str]:
    """First-occurrence canonical names along a deterministic DFS.

    ``Eq`` children are visited smaller-color first (tie: stored order —
    a tie means even bidirectional WL refinement cannot tell the two
    subtrees apart), so the numbering does not depend on ``Eq``'s
    uid-sorted storage.
    """
    naming: Dict[Tuple[str, str], str] = {}
    counters: Dict[str, int] = {}
    seen: set = set()
    stack: List[Node] = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        symbol = _node_symbol(node)
        if symbol is not None and symbol not in naming:
            kind = symbol[0]
            index = counters.get(kind, 0)
            counters[kind] = index + 1
            naming[symbol] = "%s%d" % (_PREFIX[kind], index)
        children = list(node.children())
        if isinstance(node, Eq):
            children.sort(key=lambda c: colors[id(c)])
        # LIFO stack: push reversed so children are visited left-to-right.
        stack.extend(reversed(children))
    return naming


def _canonical_text(
    root: Node, naming: Dict[Tuple[str, str], str]
) -> str:
    """Render the canonical s-expression (``Eq`` arguments sorted)."""
    memo: Dict[int, str] = {}
    for node in postorder(root):
        if isinstance(node, Var):
            text = naming[(_KIND_VAR, node.name)]
        elif isinstance(node, BoolVar):
            text = naming[(_KIND_BOOL, node.name)]
        elif isinstance(node, BoolConst):
            text = "true" if node.value else "false"
        elif isinstance(node, Offset):
            text = "(+ %s %d)" % (memo[id(node.base)], node.k)
        elif isinstance(node, FuncApp):
            text = "(%s %s)" % (
                naming[(_KIND_FUNC, node.symbol)],
                " ".join(memo[id(a)] for a in node.args),
            )
        elif isinstance(node, PredApp):
            text = "(%s %s)" % (
                naming[(_KIND_PRED, node.symbol)],
                " ".join(memo[id(a)] for a in node.args),
            )
        elif isinstance(node, Ite):
            text = "(ite %s %s %s)" % (
                memo[id(node.cond)],
                memo[id(node.then)],
                memo[id(node.els)],
            )
        elif isinstance(node, Not):
            text = "(not %s)" % memo[id(node.arg)]
        elif isinstance(node, And):
            text = "(and %s)" % " ".join(memo[id(a)] for a in node.args)
        elif isinstance(node, Or):
            text = "(or %s)" % " ".join(memo[id(a)] for a in node.args)
        elif isinstance(node, Implies):
            text = "(=> %s %s)" % (memo[id(node.lhs)], memo[id(node.rhs)])
        elif isinstance(node, Iff):
            text = "(iff %s %s)" % (memo[id(node.lhs)], memo[id(node.rhs)])
        elif isinstance(node, Eq):
            args = sorted([memo[id(node.lhs)], memo[id(node.rhs)]])
            text = "(= %s %s)" % (args[0], args[1])
        elif isinstance(node, Lt):
            text = "(< %s %s)" % (memo[id(node.lhs)], memo[id(node.rhs)])
        else:
            raise TypeError("unknown node kind: %r" % (node,))
        memo[id(node)] = text
    return memo[id(root)]


def rename_symbols(
    root: Formula,
    vars: Optional[Dict[str, str]] = None,
    bools: Optional[Dict[str, str]] = None,
    funcs: Optional[Dict[str, str]] = None,
    preds: Optional[Dict[str, str]] = None,
) -> Formula:
    """Rebuild ``root`` with symbols renamed through the given maps.

    Missing entries keep their name.  The maps must be injective on the
    symbols they cover or distinct symbols would be merged (changing the
    formula's meaning); this is asserted.
    """
    vars = vars or {}
    bools = bools or {}
    funcs = funcs or {}
    preds = preds or {}
    for mapping in (vars, bools, funcs, preds):
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("renaming map is not injective: %r" % mapping)
    memo: Dict[int, Node] = {}
    for node in postorder(root):
        new: Node
        if isinstance(node, Var):
            new = Var(vars.get(node.name, node.name))
        elif isinstance(node, BoolVar):
            new = BoolVar(bools.get(node.name, node.name))
        elif isinstance(node, BoolConst):
            new = node
        elif isinstance(node, Offset):
            new = Offset(memo[id(node.base)], node.k)
        elif isinstance(node, FuncApp):
            new = FuncApp(
                funcs.get(node.symbol, node.symbol),
                [memo[id(a)] for a in node.args],
            )
        elif isinstance(node, PredApp):
            new = PredApp(
                preds.get(node.symbol, node.symbol),
                [memo[id(a)] for a in node.args],
            )
        elif isinstance(node, Ite):
            new = Ite(
                memo[id(node.cond)], memo[id(node.then)], memo[id(node.els)]
            )
        elif isinstance(node, Not):
            new = Not(memo[id(node.arg)])
        elif isinstance(node, And):
            new = And(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Or):
            new = Or(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Implies):
            new = Implies(memo[id(node.lhs)], memo[id(node.rhs)])
        elif isinstance(node, Iff):
            new = Iff(memo[id(node.lhs)], memo[id(node.rhs)])
        elif isinstance(node, Eq):
            new = Eq(memo[id(node.lhs)], memo[id(node.rhs)])
        elif isinstance(node, Lt):
            new = Lt(memo[id(node.lhs)], memo[id(node.rhs)])
        else:
            raise TypeError("unknown node kind: %r" % (node,))
        memo[id(node)] = new
    result = memo[id(root)]
    if not isinstance(result, Formula):
        raise TypeError("renaming did not produce a formula")
    return result


@dataclass
class CanonicalForm:
    """A formula's canonical representative plus the way back.

    ``formula`` is the alpha-renamed representative (identical — as a
    hash-consed node — for every member of the isomorphism class this
    process has seen); ``key`` is its process-stable digest; the four
    maps send canonical names back to the original formula's names.
    """

    formula: Formula
    key: str
    text: str
    vars: Dict[str, str] = field(default_factory=dict)
    bools: Dict[str, str] = field(default_factory=dict)
    funcs: Dict[str, str] = field(default_factory=dict)
    preds: Dict[str, str] = field(default_factory=dict)


def canonicalize(formula: Formula) -> CanonicalForm:
    """The canonical representative of ``formula``'s isomorphism class."""
    if not isinstance(formula, Formula):
        raise TypeError("canonicalize expects a Formula, got %r" % (formula,))
    naming = _assign_names(formula, _wl_colors(formula))
    text = _canonical_text(formula, naming)
    key = hashlib.sha256(
        ("suf-canonical-v%d\n%s" % (CANONICAL_VERSION, text)).encode()
    ).hexdigest()
    forward: Dict[str, Dict[str, str]] = {
        _KIND_VAR: {},
        _KIND_BOOL: {},
        _KIND_FUNC: {},
        _KIND_PRED: {},
    }
    backward: Dict[str, Dict[str, str]] = {
        _KIND_VAR: {},
        _KIND_BOOL: {},
        _KIND_FUNC: {},
        _KIND_PRED: {},
    }
    for (kind, original), canonical in naming.items():
        forward[kind][original] = canonical
        backward[kind][canonical] = original
    renamed = rename_symbols(
        formula,
        vars=forward[_KIND_VAR],
        bools=forward[_KIND_BOOL],
        funcs=forward[_KIND_FUNC],
        preds=forward[_KIND_PRED],
    )
    return CanonicalForm(
        formula=renamed,
        key=key,
        text=text,
        vars=backward[_KIND_VAR],
        bools=backward[_KIND_BOOL],
        funcs=backward[_KIND_FUNC],
        preds=backward[_KIND_PRED],
    )


def canonical_key(formula: Formula) -> str:
    """Process-stable digest shared by every alpha-equivalent formula."""
    if not isinstance(formula, Formula):
        raise TypeError(
            "canonical_key expects a Formula, got %r" % (formula,)
        )
    naming = _assign_names(formula, _wl_colors(formula))
    text = _canonical_text(formula, naming)
    return hashlib.sha256(
        ("suf-canonical-v%d\n%s" % (CANONICAL_VERSION, text)).encode()
    ).hexdigest()


def lift_interpretation(
    model: Interpretation, form: CanonicalForm
) -> Interpretation:
    """Translate a model of ``form.formula`` back to original names.

    Used to hand a countermodel found for the canonical representative
    (or fetched from the cache) back to the caller in the vocabulary of
    the formula they actually submitted.  Entries for names outside the
    renaming (the canonical formula should not have any) pass through
    unchanged.
    """
    return Interpretation(
        vars={
            form.vars.get(name, name): value
            for name, value in model.vars.items()
        },
        bools={
            form.bools.get(name, name): value
            for name, value in model.bools.items()
        },
        funcs={
            form.funcs.get(name, name): dict(table)
            for name, table in model.funcs.items()
        },
        preds={
            form.preds.get(name, name): dict(table)
            for name, table in model.preds.items()
        },
        func_default=model.func_default,
        pred_default=model.pred_default,
    )
