"""Structural simplification beyond what the smart constructors do.

The hash-consing constructors already perform local folds (flattening,
units, double negation, same-base atom folding).  This pass adds the
non-local rewrites that repeatedly show up in generated verification
conditions:

* complementary literals: ``And(..., p, ..., not p, ...) -> false`` and
  the dual for ``Or``;
* absorption: ``Or(p, And(p, q)) -> p`` and ``And(p, Or(p, q)) -> p``;
* negation pushing for ``Implies``/``Iff`` when one side is a literal of
  the other;
* ITE-condition reuse: ``ITE(c, t, e)`` under an ancestor that fixes
  ``c``'s value is collapsed (one level deep, conjunctive context).

Simplification is validity-preserving (indeed equivalence-preserving) and
idempotent; :func:`simplify` runs bottom-up over the DAG once.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from .terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    TRUE,
    Term,
)
from .traversal import postorder

__all__ = ["simplify"]


def _negation_of(node: Formula) -> Formula:
    return node.arg if isinstance(node, Not) else Not(node)


def _has_complementary_pair(args: Sequence[Formula]) -> bool:
    seen: Set[Formula] = set(args)
    return any(
        isinstance(a, Not) and a.arg in seen for a in args
    )


def _absorb_and(args: Sequence[Formula]) -> List[Formula]:
    """Drop conjuncts of the form Or(..) that contain another conjunct."""
    present = set(args)
    out = []
    for arg in args:
        if isinstance(arg, Or) and any(d in present for d in arg.args):
            # And(p, Or(p, q), ...) == And(p, ...)
            continue
        out.append(arg)
    return out


def _absorb_or(args: Sequence[Formula]) -> List[Formula]:
    """Drop disjuncts of the form And(..) that contain another disjunct."""
    present = set(args)
    out = []
    for arg in args:
        if isinstance(arg, And) and any(c in present for c in arg.args):
            # Or(p, And(p, q), ...) == Or(p, ...)
            continue
        out.append(arg)
    return out


def _simplify_one(node: Node, memo: Dict[Node, Node]) -> Node:
    if isinstance(node, (BoolConst, BoolVar)):
        return node
    if isinstance(node, Term):
        if isinstance(node, Offset):
            return Offset(memo[node.base], node.k)
        if isinstance(node, FuncApp):
            return FuncApp(node.symbol, [memo[a] for a in node.args])
        if isinstance(node, Ite):
            return Ite(memo[node.cond], memo[node.then], memo[node.els])
        return node
    if isinstance(node, PredApp):
        return PredApp(node.symbol, [memo[a] for a in node.args])
    if isinstance(node, Not):
        return Not(memo[node.arg])
    if isinstance(node, And):
        args = [memo[a] for a in node.args]
        rebuilt = And(*args)
        if not isinstance(rebuilt, And):
            return rebuilt
        if _has_complementary_pair(rebuilt.args):
            return FALSE
        absorbed = _absorb_and(list(rebuilt.args))
        return And(*absorbed)
    if isinstance(node, Or):
        args = [memo[a] for a in node.args]
        rebuilt = Or(*args)
        if not isinstance(rebuilt, Or):
            return rebuilt
        if _has_complementary_pair(rebuilt.args):
            return TRUE
        absorbed = _absorb_or(list(rebuilt.args))
        return Or(*absorbed)
    if isinstance(node, Implies):
        lhs, rhs = memo[node.lhs], memo[node.rhs]
        if lhs is rhs:
            return TRUE
        if _negation_of(lhs) is rhs:
            return rhs  # p -> not p == not p
        return Implies(lhs, rhs)
    if isinstance(node, Iff):
        lhs, rhs = memo[node.lhs], memo[node.rhs]
        if _negation_of(lhs) is rhs:
            return FALSE
        return Iff(lhs, rhs)
    if isinstance(node, Eq):
        return Eq(memo[node.lhs], memo[node.rhs])
    if isinstance(node, Lt):
        return Lt(memo[node.lhs], memo[node.rhs])
    raise TypeError("unknown node kind: %r" % (type(node),))


def simplify(formula: Formula) -> Formula:
    """One bottom-up equivalence-preserving simplification pass."""
    memo: Dict[Node, Node] = {}
    for node in postorder(formula):
        memo[node] = _simplify_one(node, memo)
    return memo[formula]
