"""DAG traversal utilities over SUF formulas.

All walks visit each distinct node exactly once (the AST is hash-consed, so
"distinct" means object identity).  Iterative worklists are used throughout
-- paper-scale formulas reach 7500 DAG nodes and deep `And` spines, which
would overflow Python's recursion limit.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Set

from .terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    Term,
    Var,
)

__all__ = [
    "iter_dag",
    "postorder",
    "dag_size",
    "collect_vars",
    "collect_bool_vars",
    "collect_func_symbols",
    "collect_pred_symbols",
    "collect_atoms",
    "collect_func_apps",
    "max_offset_magnitude",
    "map_terms",
]


def iter_dag(root: Node) -> Iterator[Node]:
    """Yield every distinct node reachable from ``root`` (preorder)."""
    seen: Set[int] = set()
    stack: List[Node] = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children())


def postorder(root: Node) -> Iterator[Node]:
    """Yield every distinct node with children before parents."""
    seen: Set[int] = set()
    emitted: Set[int] = set()
    stack: List[Node] = [root]
    while stack:
        node = stack[-1]
        if id(node) in emitted:
            stack.pop()
            continue
        if id(node) in seen:
            stack.pop()
            emitted.add(id(node))
            yield node
            continue
        seen.add(id(node))
        for child in node.children():
            if id(child) not in emitted:
                stack.append(child)


def dag_size(root: Node) -> int:
    """Number of distinct DAG nodes — the paper's formula-size measure."""
    return sum(1 for _ in iter_dag(root))


def collect_vars(root: Node) -> List[Var]:
    """All integer symbolic constants, sorted by name."""
    out = {n for n in iter_dag(root) if isinstance(n, Var)}
    return sorted(out, key=lambda v: v.name)


def collect_bool_vars(root: Node) -> List[BoolVar]:
    """All symbolic Boolean constants, sorted by name."""
    out = {n for n in iter_dag(root) if isinstance(n, BoolVar)}
    return sorted(out, key=lambda v: v.name)


def collect_func_symbols(root: Node) -> List[str]:
    """Names of uninterpreted function symbols of arity >= 1."""
    out = {n.symbol for n in iter_dag(root) if isinstance(n, FuncApp)}
    return sorted(out)


def collect_pred_symbols(root: Node) -> List[str]:
    """Names of uninterpreted predicate symbols of arity >= 1."""
    out = {n.symbol for n in iter_dag(root) if isinstance(n, PredApp)}
    return sorted(out)


def collect_atoms(root: Node) -> List[Formula]:
    """All ``=`` and ``<`` atoms in the DAG, in deterministic uid order."""
    out = {n for n in iter_dag(root) if isinstance(n, (Eq, Lt))}
    return sorted(out, key=lambda a: a.uid)


def collect_func_apps(root: Node) -> List[FuncApp]:
    """All uninterpreted function applications, in uid order."""
    out = {n for n in iter_dag(root) if isinstance(n, FuncApp)}
    return sorted(out, key=lambda a: a.uid)


def max_offset_magnitude(root: Node) -> int:
    """Largest ``|k|`` over all ``Offset`` nodes (0 when there are none)."""
    best = 0
    for node in iter_dag(root):
        if isinstance(node, Offset):
            best = max(best, abs(node.k))
    return best


def map_terms(root: Node, fn: Callable[[Term], Term]) -> Node:
    """Rebuild ``root`` bottom-up, replacing each *leaf-most mapped* term.

    ``fn`` is applied to every term node after its children were rebuilt; it
    may return the node unchanged.  Formula structure is rebuilt as needed.
    Sharing is preserved via a memo table.
    """
    memo: Dict[Node, Node] = {}

    def rebuild(node: Node) -> Node:
        new: Node
        if isinstance(node, Var):
            new = fn(node)
        elif isinstance(node, Offset):
            new = fn(Offset(memo[node.base], node.k))
        elif isinstance(node, FuncApp):
            new = fn(FuncApp(node.symbol, [memo[a] for a in node.args]))
        elif isinstance(node, Ite):
            new = fn(Ite(memo[node.cond], memo[node.then], memo[node.els]))
        elif isinstance(node, (BoolConst, BoolVar)):
            new = node
        elif isinstance(node, PredApp):
            new = PredApp(node.symbol, [memo[a] for a in node.args])
        elif isinstance(node, Not):
            new = Not(memo[node.arg])
        elif isinstance(node, And):
            new = And(*[memo[a] for a in node.args])
        elif isinstance(node, Or):
            new = Or(*[memo[a] for a in node.args])
        elif isinstance(node, Implies):
            new = Implies(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Iff):
            new = Iff(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Eq):
            new = Eq(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Lt):
            new = Lt(memo[node.lhs], memo[node.rhs])
        else:
            raise TypeError("unknown node kind: %r" % (node,))
        return new

    for node in postorder(root):
        memo[node] = rebuild(node)
    return memo[root]
