"""S-expression parser for SUF formulas (inverse of :mod:`printer`).

Sorts are inferred from context: the top level is a formula, ``=`` / ``<``
take integer terms, Boolean connectives take formulas, and an unknown head
symbol becomes a function application in term position and a predicate
application in formula position.  Bare identifiers become symbolic integer
constants or symbolic Boolean constants the same way.

``|quoted|`` symbols (the escaping rules shared with the SMT-LIB
syntax; see :mod:`repro.logic.lexicon`) are read as plain identifiers
with the interpretation rules switched off: ``|ite|`` is a symbol named
``ite``, ``|0|`` a symbol named ``0``, never an operator or a literal.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from .terms import (
    And,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Not,
    Offset,
    Or,
    PredApp,
    TRUE,
    Term,
    Var,
)

__all__ = ["parse_formula", "parse_term", "ParseError"]

SExpr = Union[str, List["SExpr"]]


class ParseError(ValueError):
    """Raised on malformed input."""


class _Quoted(str):
    """A symbol that was written ``|quoted|``: exempt from the reserved-
    word and integer-literal interpretations a bare spelling gets."""

    __slots__ = ()


def _is_quoted(sx: "SExpr") -> bool:
    return isinstance(sx, _Quoted)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    buf: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == ";":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "|":
            if buf:
                tokens.append("".join(buf))
                buf.clear()
            end = text.find("|", i + 1)
            if end < 0:
                raise ParseError("unterminated |quoted| symbol")
            tokens.append(_Quoted(text[i + 1 : end]))
            i = end + 1
            continue
        if ch in "()":
            if buf:
                tokens.append("".join(buf))
                buf.clear()
            tokens.append(ch)
        elif ch.isspace():
            if buf:
                tokens.append("".join(buf))
                buf.clear()
        else:
            buf.append(ch)
        i += 1
    if buf:
        tokens.append("".join(buf))
    return tokens


def _read_sexpr(tokens: List[str], pos: int) -> Tuple[SExpr, int]:
    if pos >= len(tokens):
        raise ParseError("unexpected end of input")
    tok = tokens[pos]
    if tok == "(" and not _is_quoted(tok):
        items: List[SExpr] = []
        pos += 1
        while pos < len(tokens) and not (
            tokens[pos] == ")" and not _is_quoted(tokens[pos])
        ):
            item, pos = _read_sexpr(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise ParseError("missing closing parenthesis")
        return items, pos + 1
    if tok == ")" and not _is_quoted(tok):
        raise ParseError("unexpected ')'")
    return tok, pos + 1


def _parse_sexpr(text: str) -> SExpr:
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty input")
    sexpr, pos = _read_sexpr(tokens, 0)
    if pos != len(tokens):
        raise ParseError("trailing tokens after expression: %r" % tokens[pos:])
    return sexpr


_FORMULA_HEADS = {"and", "or", "not", "=>", "iff", "=", "<", "<=", ">", ">="}
_TERM_HEADS = {"succ", "pred", "+", "ite"}


def _to_term(sx: SExpr) -> Term:
    if isinstance(sx, str):
        if sx in ("true", "false") and not _is_quoted(sx):
            raise ParseError("%s is a formula, expected a term" % sx)
        _check_name(sx)
        return Var(str(sx))
    if not sx:
        raise ParseError("empty application")
    head = sx[0]
    if not isinstance(head, str):
        raise ParseError("application head must be a symbol: %r" % (head,))
    args = sx[1:]
    if _is_quoted(head):
        _check_name(head)
        return FuncApp(str(head), [_to_term(a) for a in args])
    if head == "succ":
        _arity(sx, 1)
        return Offset(_to_term(args[0]), 1)
    if head == "pred":
        _arity(sx, 1)
        return Offset(_to_term(args[0]), -1)
    if head == "+":
        _arity(sx, 2)
        return Offset(_to_term(args[0]), _to_int(args[1]))
    if head == "ite":
        _arity(sx, 3)
        return Ite(_to_formula(args[0]), _to_term(args[1]), _to_term(args[2]))
    if head in _FORMULA_HEADS:
        raise ParseError("%s is a formula head, expected a term" % head)
    _check_name(head)
    return FuncApp(str(head), [_to_term(a) for a in args])


def _to_formula(sx: SExpr) -> Formula:
    if isinstance(sx, str):
        if not _is_quoted(sx):
            if sx == "true":
                return TRUE
            if sx == "false":
                return FALSE
        _check_name(sx)
        return BoolVar(str(sx))
    if not sx:
        raise ParseError("empty application")
    head = sx[0]
    if not isinstance(head, str):
        raise ParseError("application head must be a symbol: %r" % (head,))
    args = sx[1:]
    if _is_quoted(head):
        _check_name(head)
        return PredApp(str(head), [_to_term(a) for a in args])
    if head == "and":
        return And(*[_to_formula(a) for a in args])
    if head == "or":
        return Or(*[_to_formula(a) for a in args])
    if head == "not":
        _arity(sx, 1)
        return Not(_to_formula(args[0]))
    if head == "=>":
        _arity(sx, 2)
        return Implies(_to_formula(args[0]), _to_formula(args[1]))
    if head == "iff":
        _arity(sx, 2)
        return Iff(_to_formula(args[0]), _to_formula(args[1]))
    if head == "=":
        _arity(sx, 2)
        return Eq(_to_term(args[0]), _to_term(args[1]))
    if head == "<":
        _arity(sx, 2)
        return Lt(_to_term(args[0]), _to_term(args[1]))
    if head == "<=":
        _arity(sx, 2)
        return Lt(_to_term(args[0]), Offset(_to_term(args[1]), 1))
    if head == ">":
        _arity(sx, 2)
        return Lt(_to_term(args[1]), _to_term(args[0]))
    if head == ">=":
        _arity(sx, 2)
        return Lt(_to_term(args[1]), Offset(_to_term(args[0]), 1))
    if head in _TERM_HEADS:
        raise ParseError("%s is a term head, expected a formula" % head)
    _check_name(head)
    return PredApp(str(head), [_to_term(a) for a in args])


def _arity(sx: List[SExpr], n: int) -> None:
    if len(sx) - 1 != n:
        raise ParseError(
            "%s expects %d argument(s), got %d" % (sx[0], n, len(sx) - 1)
        )


def _to_int(sx: SExpr) -> int:
    if not isinstance(sx, str) or _is_quoted(sx):
        raise ParseError("expected an integer literal, got %r" % (sx,))
    try:
        return int(sx)
    except ValueError:
        raise ParseError("expected an integer literal, got %r" % (sx,))


def _check_name(name: str) -> None:
    if _is_quoted(name):
        return  # |quoted| spellings are always plain identifiers
    if name in _FORMULA_HEADS or name in _TERM_HEADS:
        raise ParseError("reserved word used as identifier: %s" % name)
    try:
        int(name)
    except ValueError:
        return
    raise ParseError("integer literal in identifier position: %s" % name)


def parse_formula(text: str) -> Formula:
    """Parse a SUF formula from its s-expression rendering."""
    return _to_formula(_parse_sexpr(text))


def parse_term(text: str) -> Term:
    """Parse a SUF integer term from its s-expression rendering."""
    return _to_term(_parse_sexpr(text))
