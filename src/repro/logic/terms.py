"""Hash-consed abstract syntax for SUF (Separation logic with Uninterpreted Functions).

The paper (Seshia, Lahiri, Bryant; DAC 2003, Figure 1) defines two sorts:

* integer expressions -- symbolic constants, applications of uninterpreted
  function symbols, ``succ``/``pred`` (+-1), and ``ITE``;
* Boolean expressions -- ``true``/``false``, negation, conjunction,
  equalities and ``<`` between integer expressions, and applications of
  uninterpreted predicate symbols.

Formulas are represented as hash-consed DAGs: constructing a node that is
structurally identical to an existing one returns the *same* object.  This
matters because the paper measures formula size in DAG nodes, and because all
analyses (polarity, classes, domain bounds) are linear in the number of
*distinct* nodes, not in the tree size.

Design notes
------------
* ``succ``/``pred`` chains are normalised at construction into a single
  :class:`Offset` node ``base + k`` (so ``succ(pred(t)) == t`` holds for
  free, implementing the paper's first two rewrite rules).
* ``<=`` and the other derived comparisons are expressed with the two
  primitive atoms ``=`` and ``<`` plus offsets, e.g. ``x <= y`` becomes
  ``x < y + 1`` (we work over the integers).
* Node objects are immutable; ``==`` is structural but, thanks to interning,
  hits the identity fast path.  Every node carries a unique increasing
  ``uid`` usable for deterministic ordering.
* Constructors simplify: ``Ite(TRUE, a, b)`` returns ``a``, ``Eq(t, t)``
  returns ``TRUE``, and so on.  A collapsing ``__new__`` is therefore
  declared to return the *sort* (:class:`Term` / :class:`Formula`), not the
  class itself.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Set, Tuple, Type, TypeVar, Union

__all__ = [
    "Node",
    "Term",
    "Formula",
    "Var",
    "Offset",
    "FuncApp",
    "Ite",
    "BoolConst",
    "BoolVar",
    "PredApp",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Eq",
    "Lt",
    "TRUE",
    "FALSE",
    "clear_intern_cache",
    "intern_cache_size",
]

_INTERN: Dict[Tuple[Any, ...], "Node"] = {}
_UIDS = itertools.count(1)

_N = TypeVar("_N", bound="Node")


def clear_intern_cache() -> None:
    """Drop the global hash-consing table (used by tests to bound memory)."""
    _INTERN.clear()


def intern_cache_size() -> int:
    """Number of distinct nodes currently interned."""
    return len(_INTERN)


class Node:
    """Base class of all hash-consed AST nodes."""

    __slots__ = ("uid", "_hash", "_key")

    uid: int
    _hash: int
    _key: Tuple[Any, ...]

    def __new__(cls: Type[_N], *args: Any, **kwargs: Any) -> _N:
        # Concurrency audit (PR 5): the interning table is deliberately
        # unlocked.  Under the GIL each dict op is atomic; two threads
        # racing the same key at worst build duplicate nodes and the last
        # write wins — equality stays structural and the canonical layer
        # never trusts uid stability, so the race is benign.  Taking a
        # lock here would serialize every node construction.
        key = (cls,) + cls._intern_key(*args)
        cached = _INTERN.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        node = object.__new__(cls)
        node._key = key
        node._hash = hash(key)
        node.uid = next(_UIDS)
        cls._init_fields(node, *args)
        _INTERN[key] = node
        return node

    # Subclasses override these two hooks instead of __init__ so that the
    # interning logic stays in one place.  The blanket ``*args``/``**kwargs``
    # signatures mark them as per-class protocols whose real arity is fixed
    # by each subclass.
    @staticmethod
    def _intern_key(*args: Any, **kwargs: Any) -> Tuple[Any, ...]:
        raise NotImplementedError

    @staticmethod
    def _init_fields(*args: Any, **kwargs: Any) -> None:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Node) and self._key == other._key
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def children(self) -> Tuple["Node", ...]:
        """Immediate sub-nodes, in syntactic order."""
        return ()

    def is_term(self) -> bool:
        return isinstance(self, Term)

    def is_formula(self) -> bool:
        return isinstance(self, Formula)

    def __repr__(self) -> str:
        from .printer import to_sexpr

        return to_sexpr(self)


class Term(Node):
    """Integer-sorted expression."""

    __slots__ = ()


class Formula(Node):
    """Boolean-sorted expression."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Var(Term):
    """Integer symbolic constant (0-ary uninterpreted function symbol)."""

    __slots__ = ("name",)

    name: str

    @staticmethod
    def _intern_key(name: str) -> Tuple[Any, ...]:
        return (name,)

    @staticmethod
    def _init_fields(node: "Var", name: str) -> None:
        node.name = name


class Offset(Term):
    """``base + k`` for a nonzero integer ``k`` (collapsed succ/pred chain).

    Construct through :func:`repro.logic.builders.succ` / ``pred`` /
    ``offset`` which normalise ``k == 0`` to ``base`` and merge nested
    offsets; the raw constructor enforces those invariants.
    """

    __slots__ = ("base", "k")

    base: Term
    k: int

    def __new__(cls, base: Term, k: int) -> "Term":  # type: ignore  # collapses
        if not isinstance(base, Term):
            raise TypeError("Offset base must be a Term, got %r" % (base,))
        if isinstance(base, Offset):
            k = k + base.k
            base = base.base
        if k == 0:
            return base
        return Node.__new__(cls, base, k)

    @staticmethod
    def _intern_key(base: Term, k: int) -> Tuple[Any, ...]:
        return (base, k)

    @staticmethod
    def _init_fields(node: "Offset", base: Term, k: int) -> None:
        node.base = base
        node.k = k

    def children(self) -> Tuple[Node, ...]:
        return (self.base,)


class FuncApp(Term):
    """Application of an uninterpreted function symbol to integer terms."""

    __slots__ = ("symbol", "args")

    symbol: str
    args: Tuple[Term, ...]

    def __new__(cls, symbol: str, args: Iterable[Term]) -> "FuncApp":
        args = tuple(args)
        if not args:
            raise ValueError(
                "0-ary function applications must be Var nodes (symbolic "
                "constants), not FuncApp"
            )
        for a in args:
            if not isinstance(a, Term):
                raise TypeError("FuncApp argument %r is not a Term" % (a,))
        return Node.__new__(cls, symbol, args)

    @staticmethod
    def _intern_key(symbol: str, args: Tuple[Term, ...]) -> Tuple[Any, ...]:
        return (symbol, args)

    @staticmethod
    def _init_fields(node: "FuncApp", symbol: str, args: Tuple[Term, ...]) -> None:
        node.symbol = symbol
        node.args = args

    def children(self) -> Tuple[Node, ...]:
        return self.args


class Ite(Term):
    """``ITE(cond, then, els)`` over integer terms."""

    __slots__ = ("cond", "then", "els")

    cond: Formula
    then: Term
    els: Term

    def __new__(cls, cond: Formula, then: Term, els: Term) -> "Term":  # type: ignore  # collapses
        if not isinstance(cond, Formula):
            raise TypeError("Ite condition must be a Formula")
        if not (isinstance(then, Term) and isinstance(els, Term)):
            raise TypeError("Ite branches must be Terms")
        if cond is TRUE:
            return then
        if cond is FALSE:
            return els
        if then is els:
            return then
        return Node.__new__(cls, cond, then, els)

    @staticmethod
    def _intern_key(cond: Formula, then: Term, els: Term) -> Tuple[Any, ...]:
        return (cond, then, els)

    @staticmethod
    def _init_fields(node: "Ite", cond: Formula, then: Term, els: Term) -> None:
        node.cond = cond
        node.then = then
        node.els = els

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, self.then, self.els)


def _strip_offset(term: Term) -> Tuple[Term, int]:
    """Split ``t`` into ``(base, k)`` such that ``t == base + k``."""
    if isinstance(term, Offset):
        return term.base, term.k
    return term, 0


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class BoolConst(Formula):
    """``true`` or ``false``."""

    __slots__ = ("value",)

    value: bool

    @staticmethod
    def _intern_key(value: bool) -> Tuple[Any, ...]:
        return (bool(value),)

    @staticmethod
    def _init_fields(node: "BoolConst", value: bool) -> None:
        node.value = bool(value)


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class BoolVar(Formula):
    """Symbolic Boolean constant (0-ary uninterpreted predicate symbol)."""

    __slots__ = ("name",)

    name: str

    @staticmethod
    def _intern_key(name: str) -> Tuple[Any, ...]:
        return (name,)

    @staticmethod
    def _init_fields(node: "BoolVar", name: str) -> None:
        node.name = name


class PredApp(Formula):
    """Application of an uninterpreted predicate symbol to integer terms."""

    __slots__ = ("symbol", "args")

    symbol: str
    args: Tuple[Term, ...]

    def __new__(cls, symbol: str, args: Iterable[Term]) -> "PredApp":
        args = tuple(args)
        if not args:
            raise ValueError(
                "0-ary predicate applications must be BoolVar nodes"
            )
        for a in args:
            if not isinstance(a, Term):
                raise TypeError("PredApp argument %r is not a Term" % (a,))
        return Node.__new__(cls, symbol, args)

    @staticmethod
    def _intern_key(symbol: str, args: Tuple[Term, ...]) -> Tuple[Any, ...]:
        return (symbol, args)

    @staticmethod
    def _init_fields(node: "PredApp", symbol: str, args: Tuple[Term, ...]) -> None:
        node.symbol = symbol
        node.args = args

    def children(self) -> Tuple[Node, ...]:
        return self.args


class Not(Formula):
    __slots__ = ("arg",)

    arg: Formula

    def __new__(cls, arg: Formula) -> "Formula":  # type: ignore  # collapses
        if not isinstance(arg, Formula):
            raise TypeError("Not argument must be a Formula")
        if arg is TRUE:
            return FALSE
        if arg is FALSE:
            return TRUE
        if isinstance(arg, Not):
            return arg.arg
        return Node.__new__(cls, arg)

    @staticmethod
    def _intern_key(arg: Formula) -> Tuple[Any, ...]:
        return (arg,)

    @staticmethod
    def _init_fields(node: "Not", arg: Formula) -> None:
        node.arg = arg

    def children(self) -> Tuple[Node, ...]:
        return (self.arg,)


def _flatten(cls: Type[Union["And", "Or"]], args: Iterable[Formula]) -> List[Formula]:
    flat: List[Formula] = []
    for a in args:
        if not isinstance(a, Formula):
            raise TypeError("%s argument %r is not a Formula" % (cls.__name__, a))
        if isinstance(a, cls):
            flat.extend(a.args)
        else:
            flat.append(a)
    return flat


class And(Formula):
    """N-ary conjunction; flattens nested conjunctions and constants."""

    __slots__ = ("args",)

    args: Tuple[Formula, ...]

    def __new__(cls, *args: Formula) -> "Formula":  # type: ignore  # collapses
        flat: List[Formula] = []
        seen: Set[int] = set()
        for a in _flatten(cls, args):
            if a is FALSE:
                return FALSE
            if a is not TRUE and id(a) not in seen:
                seen.add(id(a))
                flat.append(a)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return Node.__new__(cls, tuple(flat))

    @staticmethod
    def _intern_key(args: Tuple[Formula, ...]) -> Tuple[Any, ...]:
        return (args,)

    @staticmethod
    def _init_fields(node: "And", args: Tuple[Formula, ...]) -> None:
        node.args = args

    def children(self) -> Tuple[Node, ...]:
        return self.args


class Or(Formula):
    """N-ary disjunction; flattens nested disjunctions and constants."""

    __slots__ = ("args",)

    args: Tuple[Formula, ...]

    def __new__(cls, *args: Formula) -> "Formula":  # type: ignore  # collapses
        flat: List[Formula] = []
        seen: Set[int] = set()
        for a in _flatten(cls, args):
            if a is TRUE:
                return TRUE
            if a is not FALSE and id(a) not in seen:
                seen.add(id(a))
                flat.append(a)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return Node.__new__(cls, tuple(flat))

    @staticmethod
    def _intern_key(args: Tuple[Formula, ...]) -> Tuple[Any, ...]:
        return (args,)

    @staticmethod
    def _init_fields(node: "Or", args: Tuple[Formula, ...]) -> None:
        node.args = args

    def children(self) -> Tuple[Node, ...]:
        return self.args


class Implies(Formula):
    __slots__ = ("lhs", "rhs")

    lhs: Formula
    rhs: Formula

    def __new__(cls, lhs: Formula, rhs: Formula) -> "Formula":  # type: ignore  # collapses
        if not (isinstance(lhs, Formula) and isinstance(rhs, Formula)):
            raise TypeError("Implies arguments must be Formulas")
        if lhs is TRUE:
            return rhs
        if lhs is FALSE or rhs is TRUE:
            return TRUE
        if rhs is FALSE:
            return Not(lhs)
        return Node.__new__(cls, lhs, rhs)

    @staticmethod
    def _intern_key(lhs: Formula, rhs: Formula) -> Tuple[Any, ...]:
        return (lhs, rhs)

    @staticmethod
    def _init_fields(node: "Implies", lhs: Formula, rhs: Formula) -> None:
        node.lhs = lhs
        node.rhs = rhs

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


class Iff(Formula):
    __slots__ = ("lhs", "rhs")

    lhs: Formula
    rhs: Formula

    def __new__(cls, lhs: Formula, rhs: Formula) -> "Formula":  # type: ignore  # collapses
        if not (isinstance(lhs, Formula) and isinstance(rhs, Formula)):
            raise TypeError("Iff arguments must be Formulas")
        if lhs is TRUE:
            return rhs
        if rhs is TRUE:
            return lhs
        if lhs is FALSE:
            return Not(rhs)
        if rhs is FALSE:
            return Not(lhs)
        if lhs is rhs:
            return TRUE
        return Node.__new__(cls, lhs, rhs)

    @staticmethod
    def _intern_key(lhs: Formula, rhs: Formula) -> Tuple[Any, ...]:
        return (lhs, rhs)

    @staticmethod
    def _init_fields(node: "Iff", lhs: Formula, rhs: Formula) -> None:
        node.lhs = lhs
        node.rhs = rhs

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


class Eq(Formula):
    """Equality between two integer terms."""

    __slots__ = ("lhs", "rhs")

    lhs: Term
    rhs: Term

    def __new__(cls, lhs: Term, rhs: Term) -> "Formula":  # type: ignore  # collapses
        if not (isinstance(lhs, Term) and isinstance(rhs, Term)):
            raise TypeError("Eq arguments must be Terms")
        if lhs is rhs:
            return TRUE
        lb, lk = _strip_offset(lhs)
        rb, rk = _strip_offset(rhs)
        if lb is rb:
            # Same base term: x + a = x + b folds to a constant.
            return TRUE if lk == rk else FALSE
        # Canonical argument order keeps a = b and b = a as one DAG node.
        if lhs.uid > rhs.uid:
            lhs, rhs = rhs, lhs
        return Node.__new__(cls, lhs, rhs)

    @staticmethod
    def _intern_key(lhs: Term, rhs: Term) -> Tuple[Any, ...]:
        return (lhs, rhs)

    @staticmethod
    def _init_fields(node: "Eq", lhs: Term, rhs: Term) -> None:
        node.lhs = lhs
        node.rhs = rhs

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


class Lt(Formula):
    """Strict ``<`` between two integer terms."""

    __slots__ = ("lhs", "rhs")

    lhs: Term
    rhs: Term

    def __new__(cls, lhs: Term, rhs: Term) -> "Formula":  # type: ignore  # collapses
        if not (isinstance(lhs, Term) and isinstance(rhs, Term)):
            raise TypeError("Lt arguments must be Terms")
        if lhs is rhs:
            return FALSE
        lb, lk = _strip_offset(lhs)
        rb, rk = _strip_offset(rhs)
        if lb is rb:
            # Same base term: x + a < x + b folds to a constant.
            return TRUE if lk < rk else FALSE
        return Node.__new__(cls, lhs, rhs)

    @staticmethod
    def _intern_key(lhs: Term, rhs: Term) -> Tuple[Any, ...]:
        return (lhs, rhs)

    @staticmethod
    def _init_fields(node: "Lt", lhs: Term, rhs: Term) -> None:
        node.lhs = lhs
        node.rhs = rhs

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)
