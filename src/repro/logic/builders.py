"""Convenience constructors for SUF formulas.

These are the functions user code is expected to import::

    from repro.logic import builders as b

    x, y = b.const("x"), b.const("y")
    f = b.func("f")
    formula = b.implies(b.eq(x, y), b.eq(f(x), f(y)))

Derived comparisons (``le``, ``gt``, ``ge``) are lowered onto the two
primitive atoms ``=`` and ``<`` using integer reasoning:
``x <= y  ==  x < y + 1``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .terms import (
    And,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Not,
    Offset,
    Or,
    PredApp,
    TRUE,
    Term,
    Var,
)

__all__ = [
    "const",
    "bconst",
    "func",
    "pred_symbol",
    "succ",
    "pred",
    "offset",
    "ite",
    "true",
    "false",
    "bnot",
    "band",
    "bor",
    "implies",
    "iff",
    "xor",
    "eq",
    "neq",
    "lt",
    "le",
    "gt",
    "ge",
    "distinct",
    "conjoin",
    "disjoin",
]


def const(name: str) -> Var:
    """Integer symbolic constant (0-arity function symbol)."""
    return Var(name)


def bconst(name: str) -> BoolVar:
    """Symbolic Boolean constant (0-arity predicate symbol)."""
    return BoolVar(name)


def func(symbol: str) -> Callable[..., Term]:
    """Uninterpreted function symbol: ``f = func("f"); f(x, y)``."""

    def apply(*args: Term) -> Term:
        if not args:
            return Var(symbol)
        return FuncApp(symbol, args)

    apply.symbol = symbol
    return apply


def pred_symbol(symbol: str) -> Callable[..., Formula]:
    """Uninterpreted predicate symbol: ``p = pred_symbol("p"); p(x)``."""

    def apply(*args: Term) -> Formula:
        if not args:
            return BoolVar(symbol)
        return PredApp(symbol, args)

    apply.symbol = symbol
    return apply


def succ(term: Term, times: int = 1) -> Term:
    """``term + times`` (the paper's ``succ`` iterated)."""
    return Offset(term, times)


def pred(term: Term, times: int = 1) -> Term:
    """``term - times`` (the paper's ``pred`` iterated)."""
    return Offset(term, -times)


def offset(term: Term, k: int) -> Term:
    """``term + k`` for any integer ``k`` (``k == 0`` returns ``term``)."""
    return Offset(term, k)


def ite(cond: Formula, then: Term, els: Term) -> Term:
    return Ite(cond, then, els)


def true() -> Formula:
    return TRUE


def false() -> Formula:
    return FALSE


def bnot(arg: Formula) -> Formula:
    return Not(arg)


def band(*args: Formula) -> Formula:
    return And(*args)


def bor(*args: Formula) -> Formula:
    return Or(*args)


def implies(lhs: Formula, rhs: Formula) -> Formula:
    return Implies(lhs, rhs)


def iff(lhs: Formula, rhs: Formula) -> Formula:
    return Iff(lhs, rhs)


def xor(lhs: Formula, rhs: Formula) -> Formula:
    return Not(Iff(lhs, rhs))


def eq(lhs: Term, rhs: Term) -> Formula:
    return Eq(lhs, rhs)


def neq(lhs: Term, rhs: Term) -> Formula:
    return Not(Eq(lhs, rhs))


def lt(lhs: Term, rhs: Term) -> Formula:
    return Lt(lhs, rhs)


def le(lhs: Term, rhs: Term) -> Formula:
    """``lhs <= rhs`` as ``lhs < rhs + 1`` (integer semantics)."""
    return Lt(lhs, Offset(rhs, 1))


def gt(lhs: Term, rhs: Term) -> Formula:
    return Lt(rhs, lhs)


def ge(lhs: Term, rhs: Term) -> Formula:
    return le(rhs, lhs)


def distinct(terms: Sequence[Term]) -> Formula:
    """Pairwise disequality of all the given terms."""
    parts = []
    for i, a in enumerate(terms):
        for b in terms[i + 1:]:
            parts.append(Not(Eq(a, b)))
    return And(*parts)


def conjoin(formulas: Sequence[Formula]) -> Formula:
    return And(*formulas)


def disjoin(formulas: Sequence[Formula]) -> Formula:
    return Or(*formulas)
