"""Symbol-escaping rules shared by every concrete syntax.

Both concrete syntaxes the repo speaks — the native s-expression
language (:mod:`repro.logic.printer` / :mod:`repro.logic.parser`) and
SMT-LIB 2 (:mod:`repro.logic.smtlib`) — write awkward symbol spellings
as ``|quoted symbols|``.  The rules for *when* a name needs quoting
live here, in one place, so a printer can never disagree with its
reader about what reads back as the same symbol: a name is quoted iff
it is a reserved word of the syntax at hand, spells like a numeral,
starts with a digit, or strays outside the simple-symbol alphabet.

Each syntax supplies its own reserved-word set (``let`` is reserved in
SMT-LIB but a fine s-expression identifier; ``iff`` and ``succ`` are
the reverse); everything else is common.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = [
    "SIMPLE_SYMBOL_CHARS",
    "is_simple_symbol",
    "reads_as_numeral",
    "symbol_needs_quoting",
    "quote_symbol",
    "render_symbol",
]

#: The SMT-LIB 2.6 simple-symbol alphabet; the s-expression language
#: adopts the same one so a symbol quoted in either syntax is quoted in
#: both unless a reserved word is involved.
SIMPLE_SYMBOL_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "~!@$%^&*_-+=<>.?/"
)


def reads_as_numeral(name: str) -> bool:
    """True when a bare ``name`` would lex as an integer literal.

    Signed spellings (``-3``, ``+0``) count: they survive printing
    ``Offset`` constants, so such names must be ``|quoted|``.
    """
    try:
        int(name)
    except ValueError:
        return False
    return True


def is_simple_symbol(name: str) -> bool:
    """A nonempty name over the simple alphabet, not digit-led."""
    return (
        bool(name)
        and not name[0].isdigit()
        and all(ch in SIMPLE_SYMBOL_CHARS for ch in name)
    )


def symbol_needs_quoting(name: str, reserved: FrozenSet[str]) -> bool:
    """Must ``name`` be ``|quoted|`` under this syntax's reserved set?"""
    return (
        name in reserved
        or reads_as_numeral(name)
        or not is_simple_symbol(name)
    )


def quote_symbol(name: str) -> str:
    """``|name|``; raises when the name cannot appear inside bars."""
    if "|" in name or "\\" in name:
        raise ValueError(
            "symbol %r is not expressible inside |...| quoting" % name
        )
    return "|%s|" % name


def render_symbol(name: str, reserved: FrozenSet[str]) -> str:
    """The spelling a reader of this syntax reads back as ``name``."""
    if symbol_needs_quoting(name, reserved):
        return quote_symbol(name)
    return name
