"""S-expression printing for SUF formulas.

The concrete syntax is a small Lisp-ish language mirroring the paper's
Figure 1::

    (and (= x y) (< (succ x) (f x y)) (not P) (p x))
    (ite (= x y) (pred z) w)

``succ``/``pred`` chains collapse to ``(+ t k)`` for ``|k| > 1`` so that the
printed form stays readable for large offsets.  :mod:`repro.logic.parser`
reads this syntax back; round-tripping is exact.  Awkward names —
reserved heads, numeral spellings, anything outside the simple-symbol
alphabet — are ``|quoted|`` under the escaping rules shared with the
SMT-LIB printer (:mod:`repro.logic.lexicon`), so formulas parsed from
external SMT-LIB benchmarks survive the native round trip too.
"""

from __future__ import annotations

from typing import Dict, List

from .lexicon import render_symbol

from .terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    Var,
)

__all__ = ["to_sexpr", "pretty", "SEXPR_RESERVED"]

#: Words the s-expression reader interprets specially; a variable or
#: function symbol spelled like one must be ``|quoted|`` to read back.
SEXPR_RESERVED = frozenset(
    [
        "true", "false", "and", "or", "not", "=>", "iff", "=",
        "<", "<=", ">", ">=", "succ", "pred", "+", "ite",
    ]
)


def _symbol(name: str) -> str:
    return render_symbol(name, SEXPR_RESERVED)


def to_sexpr(root: Node) -> str:
    """Render ``root`` as a single-line s-expression string."""
    memo: Dict[Node, str] = {}
    # Build bottom-up over the DAG to avoid recursion-depth issues.
    from .traversal import postorder

    for node in postorder(root):
        memo[node] = _render(node, memo)
    return memo[root]


def _render(node: Node, memo: Dict[Node, str]) -> str:
    if isinstance(node, Var):
        return _symbol(node.name)
    if isinstance(node, BoolVar):
        return _symbol(node.name)
    if isinstance(node, BoolConst):
        return "true" if node.value else "false"
    if isinstance(node, Offset):
        base = memo[node.base]
        if node.k == 1:
            return "(succ %s)" % base
        if node.k == -1:
            return "(pred %s)" % base
        return "(+ %s %d)" % (base, node.k)
    if isinstance(node, FuncApp):
        return "(%s %s)" % (
            _symbol(node.symbol),
            " ".join(memo[a] for a in node.args),
        )
    if isinstance(node, Ite):
        return "(ite %s %s %s)" % (
            memo[node.cond],
            memo[node.then],
            memo[node.els],
        )
    if isinstance(node, PredApp):
        return "(%s %s)" % (
            _symbol(node.symbol),
            " ".join(memo[a] for a in node.args),
        )
    if isinstance(node, Not):
        return "(not %s)" % memo[node.arg]
    if isinstance(node, And):
        return "(and %s)" % " ".join(memo[a] for a in node.args)
    if isinstance(node, Or):
        return "(or %s)" % " ".join(memo[a] for a in node.args)
    if isinstance(node, Implies):
        return "(=> %s %s)" % (memo[node.lhs], memo[node.rhs])
    if isinstance(node, Iff):
        return "(iff %s %s)" % (memo[node.lhs], memo[node.rhs])
    if isinstance(node, Eq):
        return "(= %s %s)" % (memo[node.lhs], memo[node.rhs])
    if isinstance(node, Lt):
        return "(< %s %s)" % (memo[node.lhs], memo[node.rhs])
    raise TypeError("unknown node kind: %r" % (type(node),))


def pretty(root: Node, indent: int = 2, max_width: int = 72) -> str:
    """Multi-line rendering: short sub-expressions stay on one line."""
    flat = to_sexpr(root)
    if len(flat) <= max_width:
        return flat
    return _pretty_node(root, 0, indent, max_width)


def _pretty_node(node: Node, depth: int, indent: int, max_width: int) -> str:
    flat = to_sexpr(node)
    pad = " " * (depth * indent)
    if len(flat) + depth * indent <= max_width or not node.children():
        return pad + flat

    head = _head_symbol(node)
    lines: List[str] = [pad + "(" + head]
    for child in node.children():
        lines.append(_pretty_node(child, depth + 1, indent, max_width))
    lines[-1] += ")"
    return "\n".join(lines)


def _head_symbol(node: Node) -> str:
    if isinstance(node, Offset):
        return "+ _ %d" % node.k
    if isinstance(node, (FuncApp, PredApp)):
        return _symbol(node.symbol)
    if isinstance(node, Ite):
        return "ite"
    if isinstance(node, Not):
        return "not"
    if isinstance(node, And):
        return "and"
    if isinstance(node, Or):
        return "or"
    if isinstance(node, Implies):
        return "=>"
    if isinstance(node, Iff):
        return "iff"
    if isinstance(node, Eq):
        return "="
    if isinstance(node, Lt):
        return "<"
    return "?"
