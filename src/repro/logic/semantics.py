"""Reference semantics for SUF formulas.

An :class:`Interpretation` assigns integer values to symbolic constants,
truth values to symbolic Boolean constants, and (finite, defaulted) tables
to uninterpreted function and predicate symbols.  :func:`evaluate` then
computes the truth value of a formula bottom-up over the DAG.

This module is the *specification* against which every decision procedure in
the repository is tested: a formula is valid iff :func:`evaluate` returns
``True`` under all interpretations, and the brute-force oracle
(:mod:`repro.solvers.brute`) enumerates interpretations over small domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from .terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    Term,
    Var,
)
from .traversal import postorder

__all__ = ["Interpretation", "evaluate", "evaluate_term"]

FuncTable = Dict[Tuple[int, ...], int]
PredTable = Dict[Tuple[int, ...], bool]


@dataclass
class Interpretation:
    """A first-order structure over the integers for a SUF vocabulary.

    ``funcs``/``preds`` map a symbol name to a table from argument tuples to
    results.  Missing entries fall back to ``func_default``/``pred_default``
    — this keeps functional consistency (same arguments, same value) while
    letting partial tables describe only the relevant points.
    """

    vars: Dict[str, int] = field(default_factory=dict)
    bools: Dict[str, bool] = field(default_factory=dict)
    funcs: Dict[str, FuncTable] = field(default_factory=dict)
    preds: Dict[str, PredTable] = field(default_factory=dict)
    func_default: int = 0
    pred_default: bool = False

    def var(self, name: str) -> int:
        if name not in self.vars:
            raise KeyError("no value for symbolic constant %r" % name)
        return self.vars[name]

    def boolvar(self, name: str) -> bool:
        if name not in self.bools:
            raise KeyError("no value for symbolic Boolean constant %r" % name)
        return self.bools[name]

    def apply_func(self, symbol: str, args: Tuple[int, ...]) -> int:
        table = self.funcs.get(symbol)
        if table is None:
            return self.func_default
        return table.get(args, self.func_default)

    def apply_pred(self, symbol: str, args: Tuple[int, ...]) -> bool:
        table = self.preds.get(symbol)
        if table is None:
            return self.pred_default
        return bool(table.get(args, self.pred_default))


def evaluate(formula: Formula, interp: Interpretation) -> bool:
    """Truth value of ``formula`` under ``interp``."""
    value = _evaluate_node(formula, interp)
    if not isinstance(value, bool):
        raise TypeError("expected a formula, got a term: %r" % (formula,))
    return value


def evaluate_term(term: Term, interp: Interpretation) -> int:
    """Integer value of ``term`` under ``interp``."""
    value = _evaluate_node(term, interp)
    if isinstance(value, bool):
        raise TypeError("expected a term, got a formula: %r" % (term,))
    return value


def _evaluate_node(root: Node, interp: Interpretation) -> Union[int, bool]:
    memo: Dict[Node, Union[int, bool]] = {}
    for node in postorder(root):
        memo[node] = _eval_one(node, memo, interp)
    return memo[root]


def _eval_one(
    node: Node,
    memo: Dict[Node, Union[int, bool]],
    interp: Interpretation,
) -> Union[int, bool]:
    if isinstance(node, Var):
        return interp.var(node.name)
    if isinstance(node, Offset):
        return memo[node.base] + node.k
    if isinstance(node, FuncApp):
        return interp.apply_func(
            node.symbol, tuple(memo[a] for a in node.args)
        )
    if isinstance(node, Ite):
        return memo[node.then] if memo[node.cond] else memo[node.els]
    if isinstance(node, BoolConst):
        return node.value
    if isinstance(node, BoolVar):
        return interp.boolvar(node.name)
    if isinstance(node, PredApp):
        return interp.apply_pred(
            node.symbol, tuple(memo[a] for a in node.args)
        )
    if isinstance(node, Not):
        return not memo[node.arg]
    if isinstance(node, And):
        return all(memo[a] for a in node.args)
    if isinstance(node, Or):
        return any(memo[a] for a in node.args)
    if isinstance(node, Implies):
        return (not memo[node.lhs]) or memo[node.rhs]
    if isinstance(node, Iff):
        return memo[node.lhs] == memo[node.rhs]
    if isinstance(node, Eq):
        return memo[node.lhs] == memo[node.rhs]
    if isinstance(node, Lt):
        return memo[node.lhs] < memo[node.rhs]
    raise TypeError("unknown node kind: %r" % (type(node),))
