"""Figure 3 — the number of separation predicates predicts EIJ's cost.

The paper plots, for the 16-benchmark sample, the normalized total time
(seconds per thousand DAG nodes) of SD and EIJ against the number of
separation predicates, both axes logarithmic.  The reading: EIJ is fast
while the predicate count is low, degrades as it grows, and beyond a
threshold fails in the translation stage; SD stays comparatively flat.
This correlation is what justifies using SepCnt as HYBRID's decision
feature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..benchgen.suite import sample16
from .report import ascii_scatter, format_seconds, table
from .runner import DEFAULT_TIMEOUT, RunRow, run_benchmark

__all__ = ["Fig3Point", "run_fig3", "render_fig3", "rank_correlation"]


@dataclass
class Fig3Point:
    benchmark: str
    sep_predicates: int
    sd: RunRow
    eij: RunRow


def run_fig3(timeout: float = DEFAULT_TIMEOUT) -> List[Fig3Point]:
    points = []
    for bench in sample16():
        sd = run_benchmark(bench, "SD", timeout)
        eij = run_benchmark(bench, "EIJ", timeout)
        # SepCnt comes from whichever run produced an encoding; the EIJ
        # run may die in translation, so prefer SD's measurement.
        sep = sd.sep_predicates or eij.sep_predicates
        points.append(
            Fig3Point(
                benchmark=bench.name,
                sep_predicates=sep,
                sd=sd,
                eij=eij,
            )
        )
    return points


def rank_correlation(pairs: List[Tuple[float, float]]) -> float:
    """Spearman rank correlation (no scipy dependency needed)."""
    n = len(pairs)
    if n < 2:
        return 0.0

    def ranks(values):
        order = sorted(range(n), key=lambda i: values[i])
        out = [0.0] * n
        i = 0
        while i < n:
            j = i
            while j + 1 < n and values[order[j + 1]] == values[order[i]]:
                j += 1
            rank = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                out[order[k]] = rank
            i = j + 1
        return out

    xs = ranks([p[0] for p in pairs])
    ys = ranks([p[1] for p in pairs])
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(xs, ys))
    vx = math.sqrt(sum((a - mx) ** 2 for a in xs))
    vy = math.sqrt(sum((b - my) ** 2 for b in ys))
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)


def render_fig3(points: List[Fig3Point], timeout: float = DEFAULT_TIMEOUT) -> str:
    headers = [
        "Benchmark",
        "Sep. preds",
        "SD norm (s/Knode)",
        "EIJ norm (s/Knode)",
        "EIJ status",
    ]
    body = []
    sd_series: List[Tuple[float, float]] = []
    eij_series: List[Tuple[float, float]] = []
    corr_pairs: List[Tuple[float, float]] = []
    timeout_norm = None
    for point in sorted(points, key=lambda p: p.sep_predicates):
        x = max(point.sep_predicates, 1)
        sd_norm = point.sd.normalized_seconds
        eij_norm = point.eij.normalized_seconds
        if point.eij.timed_out:
            # Plot timed-out runs on the top gridline, like the paper.
            eij_norm = timeout * 50.0
        sd_series.append((x, max(sd_norm, 1e-4)))
        eij_series.append((x, max(eij_norm, 1e-4)))
        corr_pairs.append((x, eij_norm))
        body.append(
            [
                point.benchmark,
                point.sep_predicates,
                format_seconds(sd_norm, point.sd.timed_out),
                format_seconds(eij_norm) if not point.eij.timed_out else "timeout",
                point.eij.status,
            ]
        )
    out = [
        "FIG3: Normalized total time vs number of separation predicates "
        "(16-benchmark sample)"
    ]
    out.append(table(headers, body))
    out.append("")
    out.append(
        ascii_scatter(
            {"SD": sd_series, "EIJ": eij_series},
            diagonal=False,
            xlabel="separation predicates",
            ylabel="normalized time (s/Knode)",
        )
    )
    rho = rank_correlation(corr_pairs)
    out.append(
        "Spearman rank correlation (sep predicates vs EIJ time): %.2f "
        "(paper: 'good correlation'; expect strongly positive)" % rho
    )
    return "\n".join(out)


def main(timeout: float = DEFAULT_TIMEOUT) -> str:
    text = render_fig3(run_fig3(timeout=timeout), timeout=timeout)
    print(text)
    return text


if __name__ == "__main__":
    main()
