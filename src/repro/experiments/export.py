"""Export experiment rows to CSV / JSON for external analysis.

The experiment drivers print human-readable tables; this module turns the
same :class:`~repro.experiments.runner.RunRow` records into machine-
readable files so the figures can be re-plotted with external tooling.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, fields
from typing import Iterable, List, TextIO

from .runner import RunRow

__all__ = ["write_csv", "write_json", "rows_to_dicts"]


def rows_to_dicts(rows: Iterable[RunRow]) -> List[dict]:
    out = []
    for row in rows:
        record = asdict(row)
        record["timed_out"] = row.timed_out
        record["normalized_seconds"] = row.normalized_seconds
        out.append(record)
    return out


def write_csv(rows: Iterable[RunRow], fp: TextIO) -> None:
    """Write rows as CSV with a stable header order."""
    records = rows_to_dicts(rows)
    header = [f.name for f in fields(RunRow)] + [
        "timed_out",
        "normalized_seconds",
    ]
    writer = csv.DictWriter(fp, fieldnames=header)
    writer.writeheader()
    for record in records:
        writer.writerow(record)


def write_json(rows: Iterable[RunRow], fp: TextIO, indent: int = 2) -> None:
    json.dump(rows_to_dicts(rows), fp, indent=indent, sort_keys=True)
    fp.write("\n")
