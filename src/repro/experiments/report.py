"""Plain-text rendering of the experiment outputs.

The paper's figures are log-log scatter plots; a terminal reproduction
prints the underlying series plus an ASCII scatter so that "points above
the diagonal" remains readable without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["table", "ascii_scatter", "format_seconds"]


def format_seconds(value: Optional[float], timed_out: bool = False) -> str:
    if timed_out:
        return "timeout"
    if value is None:
        return "-"
    if value < 0.01:
        return "%.4f" % value
    return "%.2f" % value


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_num(text: str) -> bool:
        try:
            float(text)
            return True
        except ValueError:
            return False

    def fmt_row(row):
        out = []
        for i, cell in enumerate(row):
            if is_num(cell):
                out.append(cell.rjust(widths[i]))
            else:
                out.append(cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = [fmt_row(headers)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def ascii_scatter(
    points: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 20,
    log: bool = True,
    diagonal: bool = True,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Log-log ASCII scatter of named point series.

    Each series gets a marker character; overlapping cells show the later
    series' marker.  With ``diagonal=True`` the ``y = x`` line is drawn in
    ``.`` so above/below-diagonal comparisons (the paper's reading of
    Figures 4–6) stay visible.
    """
    markers = "x+o*#@%"
    all_points = [p for series in points.values() for p in series]
    if not all_points:
        return "(no points)"

    def txf(value: float) -> float:
        if not log:
            return value
        return math.log10(max(value, 1e-6))

    xs = [txf(x) for x, _ in all_points]
    ys = [txf(y) for _, y in all_points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if diagonal:
        xmin = ymin = min(xmin, ymin)
        xmax = ymax = max(xmax, ymax)
    xspan = max(xmax - xmin, 1e-9)
    yspan = max(ymax - ymin, 1e-9)

    grid = [[" "] * width for _ in range(height)]

    def plot(xv: float, yv: float, ch: str) -> None:
        col = int((txf(xv) - xmin) / xspan * (width - 1))
        row = int((txf(yv) - ymin) / yspan * (height - 1))
        grid[height - 1 - row][col] = ch

    if diagonal:
        for col in range(width):
            xval = xmin + col / max(width - 1, 1) * xspan
            row = int((xval - ymin) / yspan * (height - 1))
            if 0 <= row < height:
                grid[height - 1 - row][col] = "."

    legend = []
    for i, (name, series) in enumerate(points.items()):
        ch = markers[i % len(markers)]
        legend.append("%s = %s" % (ch, name))
        for xv, yv in series:
            plot(xv, yv, ch)

    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append("x: %s, y: %s%s" % (xlabel, ylabel, "  (log-log)" if log else ""))
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)
