"""Experiment harness reproducing every table and figure of the paper.

Each module maps to one artifact (see DESIGN.md's experiment index):

* ``fig2`` — encoding effect on SAT behaviour (Figure 2 table);
* ``fig3`` — separation-predicate count vs normalized time (Figure 3);
* ``fig4`` — HYBRID vs SD/EIJ, non-invariant benchmarks (Figure 4);
* ``fig5`` — invariant-checking benchmarks, SEP_THOLD=100 (Figure 5);
* ``fig6`` — HYBRID vs SVC-style/CVC-style baselines (Figure 6);
* ``threshold_exp`` — automatic SEP_THOLD selection (§4.1);
* ``ablation`` — threshold sweep and static-hybrid comparison (ours).
"""

from . import ablation, fig2, fig3, fig4, fig5, fig6, threshold_exp
from .runner import (
    CALIBRATED_SEP_THOLD,
    DEFAULT_TIMEOUT,
    DEFAULT_TRANS_BUDGET,
    PROCEDURES,
    RunRow,
    run_benchmark,
    run_suite,
)

__all__ = [
    "ablation",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "threshold_exp",
    "CALIBRATED_SEP_THOLD",
    "DEFAULT_TIMEOUT",
    "DEFAULT_TRANS_BUDGET",
    "PROCEDURES",
    "RunRow",
    "run_benchmark",
    "run_suite",
]
