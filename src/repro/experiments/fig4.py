"""Figure 4 — HYBRID vs SD and EIJ on the 39 non-invariant benchmarks.

Scatter with HYBRID's total time on the x-axis and the competitor's on the
y-axis: points above the diagonal are HYBRID wins.  The paper's findings:
HYBRID (default SEP_THOLD = 700) completes on everything, SD and EIJ each
time out on some benchmarks, and HYBRID is 4–8× faster on several.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..benchgen.suite import non_invariant_suite
from .report import ascii_scatter, format_seconds, table
from .runner import DEFAULT_TIMEOUT, RunRow, run_benchmark

__all__ = ["Fig4Row", "run_fig4", "render_fig4", "summarize_vs_hybrid"]


@dataclass
class Fig4Row:
    benchmark: str
    hybrid: RunRow
    sd: RunRow
    eij: RunRow


def run_fig4(timeout: float = DEFAULT_TIMEOUT) -> List[Fig4Row]:
    rows = []
    for bench in non_invariant_suite():
        rows.append(
            Fig4Row(
                benchmark=bench.name,
                hybrid=run_benchmark(bench, "HYBRID", timeout),
                sd=run_benchmark(bench, "SD", timeout),
                eij=run_benchmark(bench, "EIJ", timeout),
            )
        )
    return rows


def summarize_vs_hybrid(
    pairs: List[Tuple[RunRow, RunRow]], timeout: float
) -> str:
    """Summary lines for (hybrid, other) run pairs."""
    wins = losses = other_timeouts = hybrid_timeouts = 0
    max_speedup = 0.0
    for hybrid, other in pairs:
        if hybrid.timed_out:
            hybrid_timeouts += 1
            continue
        if other.timed_out:
            other_timeouts += 1
            wins += 1
            continue
        if other.total_seconds >= hybrid.total_seconds:
            wins += 1
            max_speedup = max(
                max_speedup,
                other.total_seconds / max(hybrid.total_seconds, 1e-9),
            )
        else:
            losses += 1
    name = pairs[0][1].procedure if pairs else "?"
    return (
        "vs %s: HYBRID faster-or-equal on %d, slower on %d; %s timeouts: "
        "%d, HYBRID timeouts: %d; best speedup %.1fx"
        % (name, wins, losses, name, other_timeouts, hybrid_timeouts, max_speedup)
    )


def render_fig4(rows: List[Fig4Row], timeout: float = DEFAULT_TIMEOUT) -> str:
    headers = ["Benchmark", "HYBRID", "SD", "EIJ"]
    body = []
    sd_pts: List[Tuple[float, float]] = []
    eij_pts: List[Tuple[float, float]] = []
    for row in rows:
        body.append(
            [
                row.benchmark,
                format_seconds(row.hybrid.total_seconds, row.hybrid.timed_out),
                format_seconds(row.sd.total_seconds, row.sd.timed_out),
                format_seconds(row.eij.total_seconds, row.eij.timed_out),
            ]
        )
        hx = timeout if row.hybrid.timed_out else row.hybrid.total_seconds
        sd_pts.append(
            (hx, timeout if row.sd.timed_out else row.sd.total_seconds)
        )
        eij_pts.append(
            (hx, timeout if row.eij.timed_out else row.eij.total_seconds)
        )
    out = [
        "FIG4: HYBRID vs SD and EIJ (total time, non-invariant benchmarks)"
    ]
    out.append(table(headers, body))
    out.append("")
    out.append(
        ascii_scatter(
            {"EIJ": eij_pts, "SD": sd_pts},
            xlabel="HYBRID time (s)",
            ylabel="SD/EIJ time (s)",
        )
    )
    out.append(
        summarize_vs_hybrid([(r.hybrid, r.sd) for r in rows], timeout)
    )
    out.append(
        summarize_vs_hybrid([(r.hybrid, r.eij) for r in rows], timeout)
    )
    return "\n".join(out)


def main(timeout: float = DEFAULT_TIMEOUT) -> str:
    text = render_fig4(run_fig4(timeout=timeout), timeout=timeout)
    print(text)
    return text


if __name__ == "__main__":
    main()
