"""Ablation studies for the design choices DESIGN.md calls out.

ABL1 — threshold sensitivity: HYBRID with SEP_THOLD in {0, 100, 700, inf}.
The endpoints coincide with SD and EIJ by construction (§4: "when
SEP_THOLD = 0, HYBRID is the same as SD"), so this sweep shows the whole
SD <-> EIJ spectrum and where the default sits in it.

ABL2 — feature-based vs fixed hybrid: the paper's §1/§3 notes that the
authors' earlier CFV'02 hybrid (equalities -> EIJ, everything else -> SD,
decided *statically*, independent of formula features) "met with limited
success".  This ablation runs that static scheme against feature-based
HYBRID on both benchmark groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..benchgen.suite import invariant_suite, non_invariant_suite, sample16
from .report import format_seconds, table
from .runner import DEFAULT_TIMEOUT, RunRow, run_benchmark

__all__ = [
    "run_threshold_sweep",
    "render_threshold_sweep",
    "run_static_vs_hybrid",
    "render_static_vs_hybrid",
]

SWEEP_THOLDS = (0, 30, 100, 700, None)  # None = infinity = pure EIJ


def _run_hybrid_at(bench, thold: Optional[int], timeout: float) -> RunRow:
    if thold is None:
        return run_benchmark(bench, "EIJ", timeout)
    return run_benchmark(bench, "HYBRID", timeout, sep_thold=thold)


def run_threshold_sweep(
    timeout: float = DEFAULT_TIMEOUT,
) -> Dict[str, Dict[Optional[int], RunRow]]:
    out: Dict[str, Dict[Optional[int], RunRow]] = {}
    for bench in sample16():
        out[bench.name] = {
            thold: _run_hybrid_at(bench, thold, timeout)
            for thold in SWEEP_THOLDS
        }
    return out


def render_threshold_sweep(
    results: Dict[str, Dict[Optional[int], RunRow]]
) -> str:
    headers = ["Benchmark"] + [
        "T=%s" % ("inf" if t is None else t) for t in SWEEP_THOLDS
    ]
    body = []
    for name, runs in results.items():
        body.append(
            [name]
            + [
                format_seconds(
                    runs[t].total_seconds, runs[t].timed_out
                )
                for t in SWEEP_THOLDS
            ]
        )
    totals = ["decided"]
    for t in SWEEP_THOLDS:
        totals.append(
            "%d/%d"
            % (
                sum(1 for runs in results.values() if not runs[t].timed_out),
                len(results),
            )
        )
    out = ["ABL1: SEP_THOLD sensitivity (T=0 is SD, T=inf is EIJ)"]
    out.append(table(headers, body + [totals]))
    return "\n".join(out)


@dataclass
class StaticRow:
    benchmark: str
    group: str
    hybrid: RunRow
    static: RunRow


def run_static_vs_hybrid(timeout: float = DEFAULT_TIMEOUT) -> List[StaticRow]:
    rows = []
    for group, benches in (
        ("non-invariant", non_invariant_suite()),
        ("invariant", invariant_suite()),
    ):
        for bench in benches:
            rows.append(
                StaticRow(
                    benchmark=bench.name,
                    group=group,
                    hybrid=run_benchmark(bench, "HYBRID", timeout),
                    static=run_benchmark(bench, "STATIC", timeout),
                )
            )
    return rows


def render_static_vs_hybrid(rows: List[StaticRow]) -> str:
    headers = ["Benchmark", "Group", "HYBRID", "STATIC (CFV'02)"]
    body = [
        [
            r.benchmark,
            r.group,
            format_seconds(r.hybrid.total_seconds, r.hybrid.timed_out),
            format_seconds(r.static.total_seconds, r.static.timed_out),
        ]
        for r in rows
    ]
    wins = sum(
        1
        for r in rows
        if not r.hybrid.timed_out
        and (
            r.static.timed_out
            or r.hybrid.total_seconds <= r.static.total_seconds
        )
    )
    out = ["ABL2: feature-based HYBRID vs fixed (static) hybrid"]
    out.append(table(headers, body))
    out.append(
        "HYBRID at-least-as-fast on %d/%d benchmarks." % (wins, len(rows))
    )
    return "\n".join(out)


def main(timeout: float = DEFAULT_TIMEOUT) -> str:
    parts = [
        render_threshold_sweep(run_threshold_sweep(timeout)),
        "",
        render_static_vs_hybrid(run_static_vs_hybrid(timeout)),
    ]
    text = "\n".join(parts)
    print(text)
    return text


if __name__ == "__main__":
    main()
