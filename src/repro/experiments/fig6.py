"""Figure 6 — HYBRID vs other decision procedures (SVC, CVC).

The paper compares HYBRID (default threshold) against SVC 1.1 and CVC on
the 39 non-invariant benchmarks:

* SVC wins only on small, conjunction-dominated formulas (its conjunction
  core is a shortest-path check) and blows up on disjunctive ones;
* CVC's lazy refinement pays a per-iteration overhead and loses by orders
  of magnitude except on conjunctions that one conflict clause settles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..benchgen.suite import non_invariant_suite
from .report import ascii_scatter, format_seconds, table
from .runner import DEFAULT_TIMEOUT, RunRow, run_benchmark
from .fig4 import summarize_vs_hybrid

__all__ = ["Fig6Row", "run_fig6", "render_fig6"]


@dataclass
class Fig6Row:
    benchmark: str
    hybrid: RunRow
    svc: RunRow
    cvc: RunRow


def run_fig6(timeout: float = DEFAULT_TIMEOUT) -> List[Fig6Row]:
    rows = []
    for bench in non_invariant_suite():
        rows.append(
            Fig6Row(
                benchmark=bench.name,
                hybrid=run_benchmark(bench, "HYBRID", timeout),
                svc=run_benchmark(bench, "SVC(split)", timeout),
                cvc=run_benchmark(bench, "CVC(lazy)", timeout),
            )
        )
    return rows


def render_fig6(rows: List[Fig6Row], timeout: float = DEFAULT_TIMEOUT) -> str:
    headers = ["Benchmark", "HYBRID", "SVC(split)", "CVC(lazy)"]
    body = []
    svc_pts: List[Tuple[float, float]] = []
    cvc_pts: List[Tuple[float, float]] = []
    for row in rows:
        body.append(
            [
                row.benchmark,
                format_seconds(row.hybrid.total_seconds, row.hybrid.timed_out),
                format_seconds(row.svc.total_seconds, row.svc.timed_out),
                format_seconds(row.cvc.total_seconds, row.cvc.timed_out),
            ]
        )
        hx = timeout if row.hybrid.timed_out else row.hybrid.total_seconds
        svc_pts.append(
            (hx, timeout if row.svc.timed_out else row.svc.total_seconds)
        )
        cvc_pts.append(
            (hx, timeout if row.cvc.timed_out else row.cvc.total_seconds)
        )
    out = ["FIG6: HYBRID vs SVC-style and CVC-style procedures"]
    out.append(table(headers, body))
    out.append("")
    out.append(
        ascii_scatter(
            {"SVC": svc_pts, "CVC": cvc_pts},
            xlabel="HYBRID time (s)",
            ylabel="SVC/CVC time (s)",
        )
    )
    out.append(
        summarize_vs_hybrid([(r.hybrid, r.svc) for r in rows], timeout)
    )
    out.append(
        summarize_vs_hybrid([(r.hybrid, r.cvc) for r in rows], timeout)
    )
    return "\n".join(out)


def main(timeout: float = DEFAULT_TIMEOUT) -> str:
    text = render_fig6(run_fig6(timeout=timeout), timeout=timeout)
    print(text)
    return text


if __name__ == "__main__":
    main()
