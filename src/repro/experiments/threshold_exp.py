"""§4.1 — automatic SEP_THOLD selection on the 16-benchmark sample.

Runs EIJ on the sample, normalizes the run-times by formula size, and
applies the paper's one-dimensional variance-minimising split.  On the
authors' sample the boundary benchmark had 676 separation predicates and
the default threshold came out as 700.
"""

from __future__ import annotations

from typing import List, Tuple

from ..benchgen.suite import sample16
from ..encodings.threshold import ThresholdSelection, select_threshold
from .report import format_seconds, table
from .runner import DEFAULT_TIMEOUT, run_benchmark

__all__ = ["run_threshold_selection", "render_threshold"]


def run_threshold_selection(
    timeout: float = DEFAULT_TIMEOUT,
) -> Tuple[ThresholdSelection, List]:
    samples: List[Tuple[int, float]] = []
    rows = []
    for bench in sample16():
        eij = run_benchmark(bench, "EIJ", timeout)
        sep = eij.sep_predicates
        if not sep:
            sd = run_benchmark(bench, "SD", timeout)
            sep = sd.sep_predicates
        norm = eij.normalized_seconds
        if eij.timed_out:
            # Timed-out runs land on the paper's uniform "timeout"
            # gridline: one fixed sentinel, independent of formula size,
            # so the slow cluster is tight and separates cleanly.
            norm = timeout * 50.0
        samples.append((sep, norm))
        rows.append((bench.name, sep, norm, eij.status))
    return select_threshold(samples), rows


def render_threshold(selection: ThresholdSelection, rows) -> str:
    headers = ["Benchmark", "Sep. preds", "EIJ norm (s/Knode)", "Status"]
    body = [
        [name, sep, format_seconds(norm), status]
        for name, sep, norm, status in sorted(rows, key=lambda r: r[2])
    ]
    out = ["THOLD: automatic SEP_THOLD selection (paper section 4.1)"]
    out.append(table(headers, body))
    out.append(
        "two-cluster split at k=%d; boundary benchmark has n_k=%d "
        "separation predicates; selected SEP_THOLD=%d "
        "(paper: n_k=676 -> SEP_THOLD=700)"
        % (
            selection.split_index,
            selection.boundary_sep_count,
            selection.threshold,
        )
    )
    return "\n".join(out)


def main(timeout: float = DEFAULT_TIMEOUT) -> str:
    selection, rows = run_threshold_selection(timeout)
    text = render_threshold(selection, rows)
    print(text)
    return text


if __name__ == "__main__":
    main()
