"""Figure 2 — effect of the encoding on SAT-solver behaviour.

The paper's Figure 2 is a table over five of the larger sample benchmarks
reporting, for SD vs EIJ: the number of CNF clauses, the number of
*conflict clauses* the SAT solver adds, and the SAT time.  The headline
observation: EIJ produces **more** CNF clauses (transitivity constraints)
but **far fewer** conflict clauses and lower SAT time, because case
splitting on per-predicate variables prunes the search better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..benchgen.suite import sample16
from .report import format_seconds, table
from .runner import DEFAULT_TIMEOUT, RunRow, run_benchmark

__all__ = ["Fig2Row", "run_fig2", "render_fig2"]


@dataclass
class Fig2Row:
    benchmark: str
    sd: RunRow
    eij: RunRow


def run_fig2(
    count: int = 5, timeout: float = DEFAULT_TIMEOUT
) -> List[Fig2Row]:
    """Run SD and EIJ on the ``count`` largest sample benchmarks that
    both methods can decide (the paper's table rows have no timeouts)."""
    rows: List[Fig2Row] = []
    for bench in sorted(sample16(), key=lambda b: -b.dag_size):
        sd = run_benchmark(bench, "SD", timeout)
        eij = run_benchmark(bench, "EIJ", timeout)
        if sd.timed_out or eij.timed_out:
            continue
        rows.append(Fig2Row(benchmark=bench.name, sd=sd, eij=eij))
        if len(rows) >= count:
            break
    return rows


def render_fig2(rows: List[Fig2Row]) -> str:
    headers = [
        "Benchmark",
        "CNF clauses SD",
        "CNF clauses EIJ",
        "Conflict cl. SD",
        "Conflict cl. EIJ",
        "SAT time SD",
        "SAT time EIJ",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.benchmark,
                row.sd.cnf_clauses,
                row.eij.cnf_clauses,
                row.sd.conflict_clauses,
                row.eij.conflict_clauses,
                format_seconds(row.sd.sat_seconds, row.sd.timed_out),
                format_seconds(row.eij.sat_seconds, row.eij.timed_out),
            ]
        )
    out = ["FIG2: Effect of encoding on SAT-solver performance"]
    out.append(table(headers, body))
    decided = [r for r in rows if not (r.sd.timed_out or r.eij.timed_out)]
    if decided:
        fewer = sum(
            1
            for r in decided
            if r.eij.conflict_clauses <= r.sd.conflict_clauses
        )
        out.append(
            "EIJ needed fewer (or equal) conflict clauses on %d/%d decided "
            "benchmarks (paper: all 5)." % (fewer, len(decided))
        )
    return "\n".join(out)


def main(timeout: float = DEFAULT_TIMEOUT) -> str:
    text = render_fig2(run_fig2(timeout=timeout))
    print(text)
    return text


if __name__ == "__main__":
    main()
