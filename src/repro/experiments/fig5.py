"""Figure 5 — invariant-checking benchmarks: SD wins.

The invariant-checking formulas have few p-function applications, many
inequalities, and a small number of *large* classes, so even classes whose
SepCnt is below the threshold drag in many constants and the transitivity
constraints explode.  The paper: EIJ and default-threshold HYBRID fail on
all of them; with SEP_THOLD = 100 HYBRID completes on some but is still
outperformed by SD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..benchgen.suite import invariant_suite
from .report import ascii_scatter, format_seconds, table
from .runner import DEFAULT_TIMEOUT, RunRow, run_benchmark

__all__ = ["Fig5Row", "run_fig5", "render_fig5"]

#: The paper lowers SEP_THOLD from its default (700 on their suite) to 100
#: for this figure.  Our calibrated default is 100 (see runner), so the
#: proportionally lowered value is 30.
FIG5_SEP_THOLD = 30


@dataclass
class Fig5Row:
    benchmark: str
    hybrid: RunRow  # at the lowered FIG5_SEP_THOLD
    hybrid_default: RunRow  # at the calibrated default threshold
    sd: RunRow
    eij: RunRow


def run_fig5(timeout: float = DEFAULT_TIMEOUT) -> List[Fig5Row]:
    rows = []
    for bench in invariant_suite():
        rows.append(
            Fig5Row(
                benchmark=bench.name,
                hybrid=run_benchmark(
                    bench, "HYBRID", timeout, sep_thold=FIG5_SEP_THOLD
                ),
                hybrid_default=run_benchmark(bench, "HYBRID", timeout),  # calibrated default
                sd=run_benchmark(bench, "SD", timeout),
                eij=run_benchmark(bench, "EIJ", timeout),
            )
        )
    return rows


def render_fig5(rows: List[Fig5Row], timeout: float = DEFAULT_TIMEOUT) -> str:
    headers = [
        "Benchmark",
        "HYBRID(%d)" % FIG5_SEP_THOLD,
        "HYBRID(default)",
        "SD",
        "EIJ",
    ]
    body = []
    sd_pts: List[Tuple[float, float]] = []
    eij_pts: List[Tuple[float, float]] = []
    for row in rows:
        body.append(
            [
                row.benchmark,
                format_seconds(row.hybrid.total_seconds, row.hybrid.timed_out),
                format_seconds(
                    row.hybrid_default.total_seconds,
                    row.hybrid_default.timed_out,
                ),
                format_seconds(row.sd.total_seconds, row.sd.timed_out),
                format_seconds(row.eij.total_seconds, row.eij.timed_out),
            ]
        )
        hx = timeout if row.hybrid.timed_out else row.hybrid.total_seconds
        sd_pts.append(
            (hx, timeout if row.sd.timed_out else row.sd.total_seconds)
        )
        eij_pts.append(
            (hx, timeout if row.eij.timed_out else row.eij.total_seconds)
        )
    out = [
        "FIG5: invariant-checking benchmarks (HYBRID at SEP_THOLD=%d; "
        "paper used 100 against its default of 700)" % FIG5_SEP_THOLD
    ]
    out.append(table(headers, body))
    out.append("")
    out.append(
        ascii_scatter(
            {"SD": sd_pts, "EIJ": eij_pts},
            xlabel="HYBRID(%d) time (s)" % FIG5_SEP_THOLD,
            ylabel="SD/EIJ time (s)",
        )
    )
    sd_wins = sum(
        1
        for r in rows
        if not r.sd.timed_out
        and (r.hybrid.timed_out or r.sd.total_seconds <= r.hybrid.total_seconds)
    )
    eij_fail = sum(1 for r in rows if r.eij.timed_out)
    default_fail = sum(1 for r in rows if r.hybrid_default.timed_out)
    out.append(
        "SD at-least-as-fast as HYBRID(%d) on %d/%d; EIJ failed on %d/%d; "
        "HYBRID(default) failed on %d/%d "
        "(paper: SD wins on all, EIJ and HYBRID-default fail on all)."
        % (FIG5_SEP_THOLD, sd_wins, len(rows), eij_fail, len(rows),
           default_fail, len(rows))
    )
    return "\n".join(out)


def main(timeout: float = DEFAULT_TIMEOUT) -> str:
    text = render_fig5(run_fig5(timeout=timeout), timeout=timeout)
    print(text)
    return text


if __name__ == "__main__":
    main()
