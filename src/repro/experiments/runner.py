"""Shared experiment runner: one benchmark × one procedure → one row.

Resource limits stand in for the paper's 30-minute timeout on a 2 GHz
Pentium-IV running compiled ML + zChaff.  Our stack is pure Python, and the
synthetic formulas are scaled accordingly, so the default per-run budget is
seconds, not minutes; a row whose status is ``TIMEOUT`` plays the role of
the paper's timed-out points (plotted on the "timeout" gridline in the
scatter figures).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..benchgen.base import Benchmark
from ..core.decision import check_validity
from ..core.result import DecisionResult
from ..solvers.lazy import check_validity_lazy
from ..solvers.svclike import check_validity_svc

__all__ = [
    "RunRow",
    "run_benchmark",
    "run_suite",
    "PROCEDURES",
    "DEFAULT_TIMEOUT",
    "DEFAULT_TRANS_BUDGET",
    "CALIBRATED_SEP_THOLD",
]

#: Default wall-clock budget per (benchmark, procedure) run, seconds.
DEFAULT_TIMEOUT = 20.0

#: Default transitivity-clause budget emulating EIJ translation blow-up.
DEFAULT_TRANS_BUDGET = 100_000

#: SEP_THOLD produced by the paper's §4.1 auto-selection run on *this*
#: repository's 16-benchmark sample (see ``threshold_exp``).  The paper's
#: own suite yielded 700; the constant is suite-relative by design ("a
#: user can determine a default SEP_THOLD by using a similar statistical
#: technique on all formulas from a relevant domain").
CALIBRATED_SEP_THOLD = 100


@dataclass
class RunRow:
    """One measurement: a benchmark decided by one procedure."""

    benchmark: str
    domain: str
    procedure: str
    status: str
    total_seconds: float
    encode_seconds: float = 0.0
    sat_seconds: float = 0.0
    cnf_clauses: int = 0
    conflict_clauses: int = 0
    sep_predicates: int = 0
    dag_size: int = 0
    detail: str = ""

    @property
    def timed_out(self) -> bool:
        return self.status in ("UNKNOWN", "TIMEOUT", "TRANSLATION_LIMIT")

    @property
    def normalized_seconds(self) -> float:
        """Seconds per thousand DAG nodes (Figure 3's y-axis)."""
        return self.total_seconds / max(self.dag_size / 1000.0, 1e-9)


def _run_eager(bench: Benchmark, method: str, timeout: float, **kw) -> DecisionResult:
    return check_validity(
        bench.formula,
        method=method,
        sat_time_limit=timeout,
        trans_budget=kw.get("trans_budget", DEFAULT_TRANS_BUDGET),
        sep_thold=kw.get("sep_thold", CALIBRATED_SEP_THOLD),
        want_countermodel=False,
    )


PROCEDURES: Dict[str, Callable] = {
    "SD": lambda bench, timeout, **kw: _run_eager(bench, "sd", timeout, **kw),
    "EIJ": lambda bench, timeout, **kw: _run_eager(bench, "eij", timeout, **kw),
    "HYBRID": lambda bench, timeout, **kw: _run_eager(
        bench, "hybrid", timeout, **kw
    ),
    "STATIC": lambda bench, timeout, **kw: _run_eager(
        bench, "static", timeout, **kw
    ),
    "CVC(lazy)": lambda bench, timeout, **kw: check_validity_lazy(
        bench.formula, time_limit=timeout, want_countermodel=False
    ),
    "SVC(split)": lambda bench, timeout, **kw: check_validity_svc(
        bench.formula,
        time_limit=timeout,
        max_splits=kw.get("max_splits", 2_000_000),
        want_countermodel=False,
    ),
}


def run_benchmark(
    bench: Benchmark,
    procedure: str,
    timeout: float = DEFAULT_TIMEOUT,
    **kw,
) -> RunRow:
    """Run one procedure on one benchmark; never raises on resource limits."""
    runner = PROCEDURES[procedure]
    start = time.perf_counter()
    result = runner(bench, timeout, **kw)
    elapsed = time.perf_counter() - start

    status = result.status
    if status in (DecisionResult.VALID, DecisionResult.INVALID):
        if result.valid != bench.expected_valid:
            raise AssertionError(
                "%s decided %s as %s but the generator expects valid=%s"
                % (procedure, bench.name, status, bench.expected_valid)
            )
    else:
        status = "TIMEOUT" if status == DecisionResult.UNKNOWN else status

    stats = result.stats
    return RunRow(
        benchmark=bench.name,
        domain=bench.domain,
        procedure=procedure,
        status=status,
        total_seconds=elapsed,
        encode_seconds=stats.encode_seconds,
        sat_seconds=stats.sat_seconds,
        cnf_clauses=stats.cnf_clauses,
        conflict_clauses=stats.conflict_clauses,
        sep_predicates=stats.sep_predicates,
        dag_size=bench.dag_size,
        detail=result.detail,
    )


def run_suite(
    benchmarks: List[Benchmark],
    procedures: List[str],
    timeout: float = DEFAULT_TIMEOUT,
    **kw,
) -> List[RunRow]:
    rows: List[RunRow] = []
    for bench in benchmarks:
        for procedure in procedures:
            rows.append(run_benchmark(bench, procedure, timeout, **kw))
    return rows
