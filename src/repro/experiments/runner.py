"""Shared experiment runner: one benchmark × one procedure → one row.

Resource limits stand in for the paper's 30-minute timeout on a 2 GHz
Pentium-IV running compiled ML + zChaff.  Our stack is pure Python, and the
synthetic formulas are scaled accordingly, so the default per-run budget is
seconds, not minutes; a row whose status is ``TIMEOUT`` plays the role of
the paper's timed-out points (plotted on the "timeout" gridline in the
scatter figures).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..benchgen.base import Benchmark
from ..core.status import Status
from ..engine import registry
from ..engine.contract import SolveOutcome, SolveRequest

__all__ = [
    "RunRow",
    "run_benchmark",
    "run_suite",
    "PROCEDURES",
    "DEFAULT_TIMEOUT",
    "DEFAULT_TRANS_BUDGET",
    "CALIBRATED_SEP_THOLD",
]

#: Default wall-clock budget per (benchmark, procedure) run, seconds.
DEFAULT_TIMEOUT = 20.0

#: Default transitivity-clause budget emulating EIJ translation blow-up.
DEFAULT_TRANS_BUDGET = 100_000

#: SEP_THOLD produced by the paper's §4.1 auto-selection run on *this*
#: repository's 16-benchmark sample (see ``threshold_exp``).  The paper's
#: own suite yielded 700; the constant is suite-relative by design ("a
#: user can determine a default SEP_THOLD by using a similar statistical
#: technique on all formulas from a relevant domain").
CALIBRATED_SEP_THOLD = 100


@dataclass
class RunRow:
    """One measurement: a benchmark decided by one procedure."""

    benchmark: str
    domain: str
    procedure: str
    status: str
    total_seconds: float
    encode_seconds: float = 0.0
    sat_seconds: float = 0.0
    cnf_clauses: int = 0
    conflict_clauses: int = 0
    sep_predicates: int = 0
    dag_size: int = 0
    detail: str = ""

    @property
    def timed_out(self) -> bool:
        return self.status in ("UNKNOWN", "TIMEOUT", "TRANSLATION_LIMIT")

    @property
    def normalized_seconds(self) -> float:
        """Seconds per thousand DAG nodes (Figure 3's y-axis)."""
        return self.total_seconds / max(self.dag_size / 1000.0, 1e-9)


def _run_engine(
    bench: Benchmark, engine: str, timeout: float, **kw
) -> SolveOutcome:
    """Resolve ``engine`` through the registry and decide the benchmark.

    ``kw`` carries the experiment knobs: ``trans_budget`` / ``sep_thold``
    for the eager encodings, engine-specific limits via ``options``.
    """
    return registry.get(engine).solve(
        SolveRequest(
            formula=bench.formula,
            time_limit=timeout,
            trans_budget=kw.get("trans_budget", DEFAULT_TRANS_BUDGET),
            sep_thold=kw.get("sep_thold", CALIBRATED_SEP_THOLD),
            want_countermodel=False,
            options=kw.get("options", {}),
        )
    )


def _procedure(engine: str, **default_options) -> Callable:
    def run(bench: Benchmark, timeout: float, **kw) -> SolveOutcome:
        options = dict(default_options)
        for key in list(default_options):
            if key in kw:
                options[key] = kw[key]
        kw = {k: v for k, v in kw.items() if k not in options}
        return _run_engine(bench, engine, timeout, options=options, **kw)

    return run


#: Display name → runner.  Every procedure dispatches through
#: :mod:`repro.engine.registry`; the keys are the paper's labels.
PROCEDURES: Dict[str, Callable] = {
    "SD": _procedure("sd"),
    "EIJ": _procedure("eij"),
    "HYBRID": _procedure("hybrid"),
    "STATIC": _procedure("static"),
    "CVC(lazy)": _procedure("lazy"),
    "SVC(split)": _procedure("svc", max_splits=2_000_000),
    "PORTFOLIO": _procedure("portfolio"),
}


def run_benchmark(
    bench: Benchmark,
    procedure: str,
    timeout: float = DEFAULT_TIMEOUT,
    **kw,
) -> RunRow:
    """Run one procedure on one benchmark; never raises on resource limits."""
    runner = PROCEDURES[procedure]
    start = time.perf_counter()
    result = runner(bench, timeout, **kw)
    elapsed = time.perf_counter() - start

    status = result.status
    if status in (Status.VALID, Status.INVALID):
        if result.valid != bench.expected_valid:
            raise AssertionError(
                "%s decided %s as %s but the generator expects valid=%s"
                % (procedure, bench.name, status, bench.expected_valid)
            )
    else:
        status = "TIMEOUT" if status == Status.UNKNOWN else status

    stats = result.stats
    return RunRow(
        benchmark=bench.name,
        domain=bench.domain,
        procedure=procedure,
        status=status,
        total_seconds=elapsed,
        encode_seconds=stats.encode_seconds,
        sat_seconds=stats.sat_seconds,
        cnf_clauses=stats.cnf_clauses,
        conflict_clauses=stats.conflict_clauses,
        sep_predicates=stats.sep_predicates,
        dag_size=bench.dag_size,
        detail=result.detail,
    )


def run_suite(
    benchmarks: List[Benchmark],
    procedures: List[str],
    timeout: float = DEFAULT_TIMEOUT,
    **kw,
) -> List[RunRow]:
    rows: List[RunRow] = []
    for bench in benchmarks:
        for procedure in procedures:
            rows.append(run_benchmark(bench, procedure, timeout, **kw))
    return rows
