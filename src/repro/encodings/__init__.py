"""Propositional encodings of separation logic: SD, EIJ and HYBRID."""

from .bitvector import (
    bv_add_const,
    bv_const,
    bv_eq,
    bv_mux,
    bv_ule,
    bv_ult,
    bv_value,
    bv_var,
    bv_zero_extend,
    width_for,
)
from .hybrid import (
    DEFAULT_SEP_THOLD,
    Encoding,
    EncodingStats,
    encode_eij,
    encode_hybrid,
    encode_sd,
    encode_static_hybrid,
)
from .sepvars import Bound, SepVarRegistry
from .threshold import ThresholdSelection, select_threshold, two_cluster_split
from .transitivity import (
    TransitivityBudgetExceeded,
    TransitivityStats,
    generate_transitivity,
)

__all__ = [
    "bv_add_const",
    "bv_const",
    "bv_eq",
    "bv_mux",
    "bv_ule",
    "bv_ult",
    "bv_value",
    "bv_var",
    "bv_zero_extend",
    "width_for",
    "DEFAULT_SEP_THOLD",
    "Encoding",
    "EncodingStats",
    "encode_eij",
    "encode_hybrid",
    "encode_sd",
    "encode_static_hybrid",
    "Bound",
    "SepVarRegistry",
    "ThresholdSelection",
    "select_threshold",
    "two_cluster_split",
    "TransitivityBudgetExceeded",
    "TransitivityStats",
    "generate_transitivity",
]
