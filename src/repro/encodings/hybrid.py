"""The paper's encoders: small-domain (SD), per-constraint (EIJ), HYBRID.

All three are produced by one engine, because the paper defines them that
way: HYBRID with ``SEP_THOLD = 0`` is SD, and with ``SEP_THOLD = None``
(infinity) it is EIJ.  The engine follows §4 step by step:

1. run the separation analysis (classes, domains, SepCnt);
2. for each class, pick the method: ``SD`` when
   ``SepCnt(Vi) > SEP_THOLD``, else ``EIJ``;
3. recurse over the formula structure — Boolean connectives map to
   themselves, atoms are encoded per their class's method:

   * **EIJ atom** ``T1 ⋈ T2``: enumerate the guarded ground terms of both
     sides and build ``∨ᵢⱼ c1ᵢ ∧ c2ⱼ ∧ e(gᵢ ⋈ gⱼ)``, where ``e(...)`` is a
     literal (or a 2-literal conjunction, for equalities) over fresh
     difference-bound Boolean variables; pairs touching a ``V_p`` constant
     encode to ``false`` (maximal diversity);
   * **SD atom**: encode each side as a symbolic bit-vector over the
     class's small domain — ITEs become multiplexors, offsets become
     add-a-constant circuits, ``V_p`` constants take fixed, well-separated
     codes above the general domain — and compare with an equality or
     unsigned-less-than comparator;

4. conjoin the per-class transitivity constraints (EIJ classes) and the
   domain-bound constraints (SD classes) into ``F_trans``;
5. the result represents ``F_bool = F_trans ⟹ F_bvar``; validity of the
   input is checked by testing ``F_trans ∧ ¬F_bvar`` for unsatisfiability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Or,
    Term,
    TRUE,
    Var,
)
from ..logic.traversal import postorder
from ..separation.analysis import (
    SeparationAnalysis,
    VarClass,
    analyze_separation,
)
from ..transform.ground import enumerate_leaf_paths, split_ground
from .bitvector import (
    bv_add_const,
    bv_const,
    bv_eq,
    bv_mux,
    bv_ule,
    bv_ult,
    bv_var,
    width_for,
)
from .sepvars import SepVarRegistry
from .transitivity import (
    TransitivityStats,
    generate_equality_transitivity,
    generate_transitivity,
)

__all__ = [
    "DEFAULT_SEP_THOLD",
    "EncodingStats",
    "Encoding",
    "encode_hybrid",
    "encode_sd",
    "encode_eij",
    "encode_static_hybrid",
]

#: The paper's default threshold, selected in §4.1 by clustering the
#: normalized EIJ run-times of a 16-benchmark sample (n_k = 676 -> 700).
DEFAULT_SEP_THOLD = 700

SD = "SD"
EIJ = "EIJ"


@dataclass
class EncodingStats:
    """Size accounting for one encoding run."""

    method: str = "HYBRID"
    sep_thold: Optional[int] = DEFAULT_SEP_THOLD
    num_classes: int = 0
    sd_classes: int = 0
    eij_classes: int = 0
    sep_vars: int = 0
    derived_sep_vars: int = 0
    trans_clauses: int = 0
    sd_bits: int = 0
    max_width: int = 0
    total_sep_count: int = 0


@dataclass
class Encoding:
    """The propositional encoding of a separation-logic formula."""

    f_bvar: Formula
    f_trans: Formula
    analysis: SeparationAnalysis
    registry: SepVarRegistry
    var_bits: Dict[Var, List[BoolVar]]
    class_shift: Dict[int, int]
    p_codes: Dict[int, Dict[Var, int]]
    method_of_class: Dict[int, str]
    uses_eq_vars: bool = True
    stats: EncodingStats = field(default_factory=EncodingStats)

    @property
    def f_bool(self) -> Formula:
        """``F_trans ⟹ F_bvar`` — valid iff the input formula is valid."""
        return Implies(self.f_trans, self.f_bvar)

    @property
    def check_formula(self) -> Formula:
        """``F_trans ∧ ¬F_bvar`` — satisfiable iff the input is invalid."""
        return And(self.f_trans, Not(self.f_bvar))


class _HybridEngine:
    def __init__(
        self,
        analysis: SeparationAnalysis,
        sep_thold: Optional[int],
        trans_budget: Optional[int],
        method_name: str,
        generate_trans: bool = True,
        chooser=None,
        use_eq_vars: bool = True,
        sd_ranges: str = "uniform",
    ) -> None:
        self.analysis = analysis
        self.sep_thold = sep_thold
        self.trans_budget = trans_budget
        self.generate_trans = generate_trans
        self.chooser = chooser
        self.use_eq_vars = use_eq_vars
        if sd_ranges not in ("uniform", "ascending"):
            raise ValueError(
                "sd_ranges must be 'uniform' or 'ascending', got %r"
                % (sd_ranges,)
            )
        self.sd_ranges = sd_ranges
        self.registry = SepVarRegistry()
        self.var_bits: Dict[Var, List[BoolVar]] = {}
        self.class_shift: Dict[int, int] = {}
        self.class_width: Dict[int, int] = {}
        self.p_codes: Dict[int, Dict[Var, int]] = {}
        self.method_of_class: Dict[int, str] = {}
        self.term_bits: Dict[Tuple[int, Term], List[Formula]] = {}
        self.fmemo: Dict[Formula, Formula] = {}
        self.stats = EncodingStats(method=method_name, sep_thold=sep_thold)

        for vclass in analysis.classes:
            self.method_of_class[vclass.index] = self._choose_method(vclass)

    def _choose_method(self, vclass: VarClass) -> str:
        if self.chooser is not None:
            return self.chooser(vclass)
        if self.sep_thold is None:
            return EIJ
        return SD if vclass.sep_count > self.sep_thold else EIJ

    # -- SD machinery ---------------------------------------------------------

    def _setup_sd_class(self, vclass: VarClass) -> None:
        if vclass.index in self.class_shift:
            return
        span = vclass.max_span
        shift = span
        r = vclass.range_size
        codes: Dict[Var, int] = {}
        # V_p constants appearing in this class's atoms get fixed codes
        # above the general domain, spaced so that no offset can make two
        # distinct bases collide (maximal diversity, concretely).
        step = 2 * span + 1
        base = r + 2 * span + 1
        for i, pvar in enumerate(vclass.p_leaves):
            codes[pvar] = base + i * step
        max_value = base + max(0, len(vclass.p_leaves) - 1) * step + 2 * span
        width = width_for(max(max_value, r - 1 + 2 * span, 1))
        self.class_shift[vclass.index] = shift
        self.class_width[vclass.index] = width
        self.p_codes[vclass.index] = codes
        self.stats.max_width = max(self.stats.max_width, width)

    def _sd_var_bits(self, var: Var, vclass: VarClass) -> List[Formula]:
        bits = self.var_bits.get(var)
        if bits is None:
            width = self.class_width[vclass.index]
            bits = bv_var("$bit:%s" % var.name, width)
            self.var_bits[var] = bits
            self.stats.sd_bits += width
        return bits

    def _sd_domain_constraints(self, vclass: VarClass) -> List[Formula]:
        """Domain bounds for every encoded class constant.

        ``uniform`` (the paper's §4 step 3): every constant ranges over
        ``[0, range(Vi) - 1]``.  ``ascending`` applies the tighter
        Pnueli–Rodeh–Shtrichman–Siegel allocation to *equality-only*
        classes — the i-th constant only needs ``[0, i]`` — which shrinks
        the SAT search space without affecting completeness; classes with
        offsets or inequalities keep the uniform window.
        """
        out: List[Formula] = []
        width = self.class_width[vclass.index]
        ascending = self.sd_ranges == "ascending" and not (
            vclass.has_inequality or vclass.has_offset
        )
        uniform_limit = bv_const(vclass.range_size - 1, width)
        for index, var in enumerate(vclass.vars):
            if var not in self.var_bits:
                continue
            if ascending:
                out.append(
                    bv_ule(self.var_bits[var], bv_const(index, width))
                )
            else:
                out.append(bv_ule(self.var_bits[var], uniform_limit))
        return out

    def _sd_term(self, term: Term, vclass: VarClass) -> List[Formula]:
        """Encode an offset-pushed term as a bit-vector over the class."""
        key = (vclass.index, term)
        cached = self.term_bits.get(key)
        if cached is not None:
            return cached
        width = self.class_width[vclass.index]
        shift = self.class_shift[vclass.index]
        if isinstance(term, Ite):
            cond = self.fmemo[term.cond]
            bits = bv_mux(
                cond,
                self._sd_term(term.then, vclass),
                self._sd_term(term.els, vclass),
            )
        else:
            base, k = split_ground(term)
            if base in self.analysis.p_vars:
                code = self.p_codes[vclass.index][base]
                bits = bv_const(code + k + shift, width)
            else:
                bits = bv_add_const(self._sd_var_bits(base, vclass), k + shift)
        self.term_bits[key] = bits
        return bits

    def _encode_atom_sd(self, atom: Formula, vclass: VarClass) -> Formula:
        self._setup_sd_class(vclass)
        lhs = self._sd_term(atom.lhs, vclass)
        rhs = self._sd_term(atom.rhs, vclass)
        if isinstance(atom, Eq):
            return bv_eq(lhs, rhs)
        return bv_ult(lhs, rhs)

    # -- EIJ machinery ---------------------------------------------------------

    def _eij_pair(
        self, g1: Term, g2: Term, is_eq: bool, equality_only: bool
    ) -> Formula:
        """Encode ``g1 = g2`` or ``g1 < g2`` over ground terms.

        In an *equality-only* class (no inequalities, no offsets) a single
        Boolean variable per pair suffices and keeps the transitivity
        constraints polynomial; otherwise equalities split into two
        difference bounds over the integers.
        """
        x, k1 = split_ground(g1)
        y, k2 = split_ground(g2)
        p_vars = self.analysis.p_vars
        if x is y:
            if is_eq:
                return TRUE if k1 == k2 else FALSE
            return TRUE if k1 < k2 else FALSE
        if x in p_vars or y in p_vars:
            if is_eq:
                # Maximal diversity: distinct p-bases never coincide, and a
                # p-constant never equals a general value.
                return FALSE
            raise AssertionError(
                "V_p constant under an inequality — the polarity analysis "
                "should have classified it general: %r < %r" % (g1, g2)
            )
        if equality_only:
            if not (is_eq and k1 == 0 and k2 == 0):
                raise AssertionError(
                    "non-equality atom in an equality-only class"
                )
            return self.registry.eq_var(x, y)
        if is_eq:
            c = k2 - k1
            return And(
                self.registry.literal(x, y, c),
                self.registry.literal(y, x, -c),
            )
        return self.registry.literal(x, y, k2 - k1 - 1)

    def _is_equality_only(self, vclass: Optional[VarClass]) -> bool:
        return (
            self.use_eq_vars
            and vclass is not None
            and not (vclass.has_inequality or vclass.has_offset)
        )

    def _encode_atom_eij(self, atom: Formula) -> Formula:
        is_eq = isinstance(atom, Eq)
        equality_only = self._is_equality_only(
            self.analysis.atom_class.get(atom)
        )
        lhs_paths = enumerate_leaf_paths(atom.lhs)
        rhs_paths = enumerate_leaf_paths(atom.rhs)
        disjuncts: List[Formula] = []
        for path1, g1 in lhs_paths:
            guard1 = [
                self.fmemo[cond] if pol else Not(self.fmemo[cond])
                for cond, pol in path1
            ]
            for path2, g2 in rhs_paths:
                guard2 = [
                    self.fmemo[cond] if pol else Not(self.fmemo[cond])
                    for cond, pol in path2
                ]
                pair = self._eij_pair(g1, g2, is_eq, equality_only)
                disjuncts.append(And(*(guard1 + guard2 + [pair])))
        return Or(*disjuncts)

    # -- skeleton --------------------------------------------------------------

    def _encode_atom(self, atom: Formula) -> Formula:
        vclass = self.analysis.atom_class.get(atom)
        if vclass is None:
            # Pure-V_p atom: every ground pair folds to a constant.
            return self._encode_atom_eij(atom)
        if self.method_of_class[vclass.index] == SD:
            return self._encode_atom_sd(atom, vclass)
        return self._encode_atom_eij(atom)

    def encode(self) -> Encoding:
        pushed = self.analysis.pushed
        fmemo = self.fmemo
        for node in postorder(pushed):
            if node in fmemo or isinstance(node, Term):
                continue
            if isinstance(node, (BoolConst, BoolVar)):
                fmemo[node] = node
            elif isinstance(node, Not):
                fmemo[node] = Not(fmemo[node.arg])
            elif isinstance(node, And):
                fmemo[node] = And(*[fmemo[a] for a in node.args])
            elif isinstance(node, Or):
                fmemo[node] = Or(*[fmemo[a] for a in node.args])
            elif isinstance(node, Implies):
                fmemo[node] = Implies(fmemo[node.lhs], fmemo[node.rhs])
            elif isinstance(node, Iff):
                fmemo[node] = Iff(fmemo[node.lhs], fmemo[node.rhs])
            elif isinstance(node, (Eq, Lt)):
                fmemo[node] = self._encode_atom(node)
            else:
                raise TypeError("unknown formula kind: %r" % (type(node),))
        f_bvar = fmemo[pushed]

        # F_trans: transitivity for EIJ classes, domain bounds for SD ones.
        trans_parts: List[Formula] = []
        tstats = TransitivityStats()
        for vclass in self.analysis.classes:
            if self.method_of_class[vclass.index] == EIJ:
                if not self.generate_trans:
                    continue
                if self._is_equality_only(vclass):
                    clauses = generate_equality_transitivity(
                        self.registry,
                        vclass.vars,
                        budget=self.trans_budget,
                        stats=tstats,
                    )
                else:
                    clauses = generate_transitivity(
                        self.registry,
                        vclass.vars,
                        budget=self.trans_budget,
                        stats=tstats,
                    )
                trans_parts.extend(clauses)
            else:
                trans_parts.extend(self._sd_domain_constraints(vclass))
        f_trans = And(*trans_parts)

        stats = self.stats
        stats.num_classes = len(self.analysis.classes)
        stats.sd_classes = sum(
            1 for m in self.method_of_class.values() if m == SD
        )
        stats.eij_classes = stats.num_classes - stats.sd_classes
        stats.sep_vars = self.registry.atom_var_count
        stats.derived_sep_vars = self.registry.derived_var_count
        stats.trans_clauses = tstats.clauses
        stats.total_sep_count = self.analysis.total_sep_count()

        return Encoding(
            f_bvar=f_bvar,
            f_trans=f_trans,
            analysis=self.analysis,
            registry=self.registry,
            var_bits=self.var_bits,
            class_shift=self.class_shift,
            p_codes=self.p_codes,
            method_of_class=self.method_of_class,
            uses_eq_vars=self.use_eq_vars,
            stats=stats,
        )


def _encode(
    f_sep: Formula,
    sep_thold: Optional[int],
    trans_budget: Optional[int],
    method_name: str,
    analysis: Optional[SeparationAnalysis] = None,
    generate_trans: bool = True,
    use_eq_vars: bool = True,
    sd_ranges: str = "uniform",
) -> Encoding:
    if analysis is None:
        analysis = analyze_separation(f_sep)
    engine = _HybridEngine(
        analysis,
        sep_thold,
        trans_budget,
        method_name,
        generate_trans,
        use_eq_vars=use_eq_vars,
        sd_ranges=sd_ranges,
    )
    return engine.encode()


def encode_hybrid(
    f_sep: Formula,
    sep_thold: int = DEFAULT_SEP_THOLD,
    trans_budget: Optional[int] = None,
    analysis: Optional[SeparationAnalysis] = None,
) -> Encoding:
    """The paper's HYBRID encoding with the given ``SEP_THOLD``."""
    return _encode(f_sep, sep_thold, trans_budget, "HYBRID", analysis)


def encode_sd(
    f_sep: Formula,
    analysis: Optional[SeparationAnalysis] = None,
    sd_ranges: str = "uniform",
) -> Encoding:
    """Pure small-domain encoding (HYBRID with ``SEP_THOLD = 0``).

    ``sd_ranges="ascending"`` enables the tighter Pnueli-et-al. range
    allocation on equality-only classes (the paper's reference [12]).
    """
    return _encode(f_sep, 0, None, "SD", analysis, sd_ranges=sd_ranges)


def encode_static_hybrid(
    f_sep: Formula,
    trans_budget: Optional[int] = None,
    analysis: Optional[SeparationAnalysis] = None,
) -> Encoding:
    """The CFV'02 *fixed* hybrid the paper says met with limited success:
    equalities without arithmetic use EIJ, everything else uses SD — the
    choice never looks at formula features such as SepCnt."""

    def chooser(vclass: VarClass) -> str:
        if vclass.has_inequality or vclass.has_offset:
            return SD
        return EIJ

    if analysis is None:
        analysis = analyze_separation(f_sep)
    engine = _HybridEngine(
        analysis, None, trans_budget, "STATIC", chooser=chooser
    )
    return engine.encode()


def encode_eij(
    f_sep: Formula,
    trans_budget: Optional[int] = None,
    analysis: Optional[SeparationAnalysis] = None,
    transitivity: bool = True,
) -> Encoding:
    """Pure per-constraint encoding (HYBRID with infinite ``SEP_THOLD``).

    ``transitivity=False`` skips F_trans generation entirely; the lazy
    (CVC-style) solver uses this and enforces consistency by refinement —
    in that mode every equality splits into difference bounds (no
    dedicated equality variables) so the theory core sees all constraints.
    """
    return _encode(
        f_sep,
        None,
        trans_budget,
        "EIJ",
        analysis,
        generate_trans=transitivity,
        use_eq_vars=transitivity,
    )
