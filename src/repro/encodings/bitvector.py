"""Symbolic bit-vector gadgets used by the small-domain (SD) encoding.

A bit-vector is a little-endian list of propositional :class:`Formula`
objects (bit 0 first).  The gadgets here are the circuits the paper's SD
method needs: constant vectors, fresh variable vectors, add-a-constant
(ripple carry), equality and unsigned less-than comparators, and the
multiplexor that ITE expressions become.

All gadgets are purely structural — they build formula DAGs; Tseitin
flattens them later.  Widths must match for binary gadgets; use
:func:`bv_zero_extend` to pad.
"""

from __future__ import annotations

from typing import List, Sequence

from ..logic.terms import And, BoolVar, FALSE, Formula, Iff, Not, Or, TRUE

__all__ = [
    "bv_const",
    "bv_var",
    "bv_zero_extend",
    "bv_add_const",
    "bv_eq",
    "bv_ult",
    "bv_ule",
    "bv_mux",
    "bv_value",
    "width_for",
]

BitVec = List[Formula]


def width_for(max_value: int) -> int:
    """Bits needed to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return max(1, max_value.bit_length())


def bv_const(value: int, width: int) -> BitVec:
    """Constant bit-vector (little-endian) for a non-negative value."""
    if value < 0:
        raise ValueError("bv_const expects a non-negative value")
    if value.bit_length() > width:
        raise ValueError(
            "value %d does not fit in %d bit(s)" % (value, width)
        )
    return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]


def bv_var(prefix: str, width: int) -> BitVec:
    """Fresh vector of symbolic Boolean constants named ``prefix:i``."""
    return [BoolVar("%s:%d" % (prefix, i)) for i in range(width)]


def bv_zero_extend(bits: Sequence[Formula], width: int) -> BitVec:
    if len(bits) > width:
        raise ValueError("cannot shrink a bit-vector with zero_extend")
    return list(bits) + [FALSE] * (width - len(bits))


def bv_add_const(bits: Sequence[Formula], k: int) -> BitVec:
    """``bits + k`` for ``k >= 0`` via ripple carry; width is preserved.

    The SD encoder guarantees no overflow by construction (domains are
    shifted and widths sized to the largest encodable value), so the final
    carry-out is dropped.
    """
    if k < 0:
        raise ValueError(
            "bv_add_const expects k >= 0; shift domains instead of "
            "subtracting"
        )
    out: BitVec = []
    carry: Formula = FALSE
    for i, bit in enumerate(bits):
        kbit = TRUE if (k >> i) & 1 else FALSE
        # sum = bit xor kbit xor carry; with kbit constant this simplifies.
        if kbit is TRUE:
            total = Iff(bit, carry)  # bit xor 1 xor carry == (bit == carry)
            new_carry = Or(bit, carry)
        else:
            total = Not(Iff(bit, carry))  # bit xor carry
            new_carry = And(bit, carry)
        out.append(total)
        carry = new_carry
    return out


def bv_eq(a: Sequence[Formula], b: Sequence[Formula]) -> Formula:
    if len(a) != len(b):
        raise ValueError("width mismatch in bv_eq")
    return And(*[Iff(x, y) for x, y in zip(a, b)])


def bv_ult(a: Sequence[Formula], b: Sequence[Formula]) -> Formula:
    """Unsigned ``a < b``, built MSB-down."""
    if len(a) != len(b):
        raise ValueError("width mismatch in bv_ult")
    result: Formula = FALSE
    for x, y in zip(a, b):  # little-endian: least significant first
        # result(i) = (x < y) or (x == y and result(i-1))
        result = Or(And(Not(x), y), And(Iff(x, y), result))
    return result


def bv_ule(a: Sequence[Formula], b: Sequence[Formula]) -> Formula:
    """Unsigned ``a <= b``."""
    return Not(bv_ult(b, a))


def bv_mux(cond: Formula, then: Sequence[Formula], els: Sequence[Formula]) -> BitVec:
    """Bitwise multiplexor: ``cond ? then : els``."""
    if len(then) != len(els):
        raise ValueError("width mismatch in bv_mux")
    return [Or(And(cond, t), And(Not(cond), e)) for t, e in zip(then, els)]


def bv_value(bits: Sequence[Formula], model) -> int:
    """Decode a bit-vector under a Boolean model.

    ``model`` maps :class:`BoolVar` -> bool.  Constant bits need no entry.
    """
    value = 0
    for i, bit in enumerate(bits):
        if bit is TRUE:
            value |= 1 << i
        elif bit is FALSE:
            continue
        elif isinstance(bit, BoolVar):
            if model.get(bit, False):
                value |= 1 << i
        else:
            raise ValueError(
                "bv_value can only decode constant/variable bits; "
                "got %r" % (bit,)
            )
    return value
