"""Transitivity-constraint generation for the per-constraint (EIJ) encoding.

A full assignment to the EIJ Boolean variables asserts one difference bound
per variable (the bound itself, or its integer negation).  The assignment is
theory-consistent iff the asserted bounds contain no negative-weight cycle.
This module generates a propositional formula ``F_trans`` that rules out
*every* negative cycle, by graph-shaped Fourier–Motzkin elimination:

* build the *variable graph* of the class (nodes = symbolic constants,
  edges = pairs related by some bound variable);
* eliminate nodes in min-degree order; when node ``v`` goes, every pair of
  bounds ``a - v <= c1`` and ``v - b <= c2`` yields the implied bound
  ``a - b <= c1 + c2``, adding the chord ``(a, b)`` (this is the chordal
  triangulation the Strichman–Seshia–Bryant CAV'02 procedure performs);
* an implied bound on a *new* (pair, constant) allocates a fresh Boolean
  variable — the paper notes "this process might, in general, result in new
  Boolean variables being generated";
* self-implications ``a - a <= c`` with ``c < 0`` become two-literal
  conflict clauses.

The number of constants per edge can grow multiplicatively — this is the
potentially-exponential blow-up the paper attributes to EIJ.  A budget
caps the work and raises :class:`TransitivityBudgetExceeded`, which the
experiment harness treats the way the paper treats EIJ translation-stage
timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..logic.terms import BoolVar, Formula, Not, Or, Var
from .sepvars import SepVarRegistry

__all__ = [
    "TransitivityBudgetExceeded",
    "TransitivityStats",
    "generate_transitivity",
    "generate_equality_transitivity",
]


class TransitivityBudgetExceeded(Exception):
    """Raised when constraint generation exceeds the configured budget."""

    def __init__(self, clauses: int, budget: int):
        super().__init__(
            "transitivity generation exceeded budget: %d clauses "
            "(budget %d)" % (clauses, budget)
        )
        self.clauses = clauses
        self.budget = budget


@dataclass
class TransitivityStats:
    clauses: int = 0
    derived_vars: int = 0
    eliminated_nodes: int = 0
    fill_edges: int = 0


def _negate(literal: Formula) -> Formula:
    return literal.arg if isinstance(literal, Not) else Not(literal)


def generate_equality_transitivity(
    registry: SepVarRegistry,
    class_vars: Sequence[Var],
    budget: Optional[int] = None,
    stats: Optional[TransitivityStats] = None,
) -> List[Formula]:
    """Triangle constraints for an *equality-only* class (Bryant–Velev).

    Each pair of compared constants has one Boolean variable; the variable
    graph is chordalised by min-degree elimination, and every triangle of
    the filled graph contributes its three transitivity implications
    ``E_ab ∧ E_bc ⇒ E_ac``.  This is the polynomial subclass the paper's
    Section 3 footnote highlights — no constants, no derived chains.
    """
    if stats is None:
        stats = TransitivityStats()
    members: Set[Var] = set(class_vars)

    adjacency: Dict[Var, Set[Var]] = {}
    for x, y in registry.eq_pairs():
        if x not in members or y not in members:
            continue
        adjacency.setdefault(x, set()).add(y)
        adjacency.setdefault(y, set()).add(x)

    clauses: List[Formula] = []
    seen_triangles: Set[frozenset] = set()

    def emit_triangle(a: Var, v: Var, c: Var) -> None:
        key = frozenset((a.uid, v.uid, c.uid))
        if key in seen_triangles:
            return
        seen_triangles.add(key)
        e_av = registry.eq_var(a, v, derived=True)
        e_vc = registry.eq_var(v, c, derived=True)
        e_ac = registry.eq_var(a, c, derived=True)
        for p, q, r in (
            (e_av, e_vc, e_ac),
            (e_av, e_ac, e_vc),
            (e_vc, e_ac, e_av),
        ):
            clauses.append(Or(Not(p), Not(q), r))
            stats.clauses += 1
        if budget is not None and stats.clauses > budget:
            raise TransitivityBudgetExceeded(stats.clauses, budget)

    remaining = set(adjacency)
    while remaining:
        node = min(remaining, key=lambda v: (len(adjacency[v]), v.uid))
        neighbors = sorted(adjacency[node], key=lambda v: v.uid)
        for i, a in enumerate(neighbors):
            for c in neighbors[i + 1:]:
                if c not in adjacency.get(a, set()):
                    stats.fill_edges += 1
                adjacency.setdefault(a, set()).add(c)
                adjacency.setdefault(c, set()).add(a)
                emit_triangle(a, node, c)
        for a in neighbors:
            adjacency[a].discard(node)
        adjacency[node] = set()
        remaining.discard(node)
        stats.eliminated_nodes += 1

    return clauses


def generate_transitivity(
    registry: SepVarRegistry,
    class_vars: Sequence[Var],
    budget: Optional[int] = None,
    stats: Optional[TransitivityStats] = None,
) -> List[Formula]:
    """Generate the transitivity clauses for one EIJ-encoded class.

    Returns a list of clause formulas (disjunctions of registry literals);
    their conjunction is the class's contribution to ``F_trans``.
    """
    if stats is None:
        stats = TransitivityStats()
    members: Set[Var] = set(class_vars)

    # Directed constant tables: (u, v) -> {c: literal asserting u - v <= c}.
    table: Dict[Tuple[Var, Var], Dict[int, Formula]] = {}
    adjacency: Dict[Var, Set[Var]] = {}

    for x, y in registry.pairs():
        if x not in members or y not in members:
            continue
        fwd = table.setdefault((x, y), {})
        rev = table.setdefault((y, x), {})
        for c in registry.constants(x, y):
            lit = registry.literal(x, y, c)
            fwd[c] = lit
            rev[-c - 1] = _negate(lit)
        adjacency.setdefault(x, set()).add(y)
        adjacency.setdefault(y, set()).add(x)

    clauses: List[Formula] = []
    seen_clauses: Set[frozenset] = set()

    def emit(lits: Tuple[Formula, ...]) -> None:
        key = frozenset(id(l) for l in lits)
        if key in seen_clauses:
            return
        seen_clauses.add(key)
        clauses.append(Or(*lits))
        stats.clauses += 1
        if budget is not None and stats.clauses > budget:
            raise TransitivityBudgetExceeded(stats.clauses, budget)

    def implied_literal(a: Var, b: Var, c: int) -> Formula:
        entry = table.setdefault((a, b), {})
        lit = entry.get(c)
        if lit is None:
            before = registry.var_count()
            lit = registry.literal(a, b, c, derived=True)
            if registry.var_count() > before:
                stats.derived_vars += 1
            entry[c] = lit
            table.setdefault((b, a), {})[-c - 1] = _negate(lit)
        return lit

    remaining = set(adjacency)
    while remaining:
        # Min-degree elimination ordering (deterministic tie-break by uid).
        node = min(remaining, key=lambda v: (len(adjacency[v]), v.uid))
        neighbors = sorted(adjacency[node], key=lambda v: v.uid)
        for a in neighbors:
            in_bounds = table.get((a, node), {})
            if not in_bounds:
                continue
            for b in neighbors:
                out_bounds = table.get((node, b), {})
                if not out_bounds:
                    continue
                if a is b:
                    # a -> node -> a : conflict when the cycle is negative.
                    for c1, l1 in in_bounds.items():
                        for c2, l2 in out_bounds.items():
                            if c1 + c2 >= 0:
                                continue
                            nl1, nl2 = _negate(l1), _negate(l2)
                            if nl1 is l2:  # complementary literals: tautology
                                continue
                            emit((nl1, nl2))
                    continue
                for c1, l1 in in_bounds.items():
                    for c2, l2 in out_bounds.items():
                        l3 = implied_literal(a, b, c1 + c2)
                        emit((_negate(l1), _negate(l2), l3))
                if node not in (a, b) and b not in adjacency.get(a, set()):
                    stats.fill_edges += 1
                adjacency.setdefault(a, set()).add(b)
                adjacency.setdefault(b, set()).add(a)
        # Remove the node from the graph.
        for a in neighbors:
            adjacency[a].discard(node)
        adjacency[node] = set()
        remaining.discard(node)
        stats.eliminated_nodes += 1

    return clauses
