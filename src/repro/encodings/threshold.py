"""Automatic selection of SEP_THOLD (paper §4.1).

Given a sample of benchmarks with, for each, the number of separation
predicates and the *normalized* EIJ run-time (seconds per thousand DAG
nodes), the paper:

1. sorts the normalized run-times ``T1 <= ... <= Tn``;
2. finds the split index ``k`` minimising the sum of the variances of
   ``{T1..Tk}`` and ``{Tk+1..Tn}`` (classic 1-D two-cluster split by squared
   distance);
3. sets SEP_THOLD to the smallest multiple of 100 strictly greater than
   ``n_k``, the separation-predicate count of the benchmark with run-time
   ``Tk``.

On the authors' 16-benchmark sample this produced ``n_k = 676`` and the
default ``SEP_THOLD = 700``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ThresholdSelection", "select_threshold", "two_cluster_split"]


@dataclass
class ThresholdSelection:
    threshold: int  # the selected SEP_THOLD
    split_index: int  # k: size of the low-runtime cluster
    boundary_sep_count: int  # n_k
    sorted_runtimes: Tuple[float, ...]
    sorted_sep_counts: Tuple[int, ...]


def _variance(values: Sequence[float]) -> float:
    if len(values) <= 1:
        return 0.0
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values) / len(values)


def two_cluster_split(sorted_values: Sequence[float]) -> int:
    """Index ``k`` (1-based cluster size) minimising the variance sum.

    ``sorted_values`` must be ascending.  Returns ``k`` with
    ``1 <= k < len(sorted_values)`` splitting into ``[:k]`` and ``[k:]``;
    for fewer than two values, returns ``len(sorted_values)``.
    """
    n = len(sorted_values)
    if n < 2:
        return n
    best_k, best_score = 1, float("inf")
    for k in range(1, n):
        score = _variance(sorted_values[:k]) + _variance(sorted_values[k:])
        if score < best_score:
            best_k, best_score = k, score
    return best_k


def select_threshold(
    samples: Sequence[Tuple[int, float]],
    round_to: int = 100,
) -> ThresholdSelection:
    """Select SEP_THOLD from ``(sep_predicate_count, normalized_time)`` pairs.

    Timed-out benchmarks should be passed with a large sentinel time (the
    paper's EIJ timeouts naturally land in the slow cluster).
    """
    if not samples:
        raise ValueError("select_threshold needs at least one sample")
    ordered = sorted(samples, key=lambda s: s[1])
    times = [t for _, t in ordered]
    counts = [c for c, _ in ordered]
    k = two_cluster_split(times)
    if k >= len(ordered):
        boundary = max(counts)
    else:
        boundary = counts[k - 1]
    threshold = ((boundary // round_to) + 1) * round_to
    return ThresholdSelection(
        threshold=threshold,
        split_index=k,
        boundary_sep_count=boundary,
        sorted_runtimes=tuple(times),
        sorted_sep_counts=tuple(counts),
    )
