"""Registry of per-constraint (EIJ) Boolean variables.

Every EIJ Boolean variable denotes one *difference bound* over a canonical
ordered pair of symbolic constants::

    B(x, y, c)   <->   x - y <= c          (x.uid < y.uid)

Both polarities are meaningful over the integers::

    not B(x, y, c)   <->   y - x <= -c - 1

so every literal over registry variables asserts exactly one bound, which is
what makes the transitivity-constraint generation uniform.  Equalities are
split into the conjunction of two bounds (``x = y + c`` becomes
``x - y <= c  and  y - x <= -c``), matching the integer semantics.

The registry hands out :class:`~repro.logic.terms.BoolVar` literals so the
rest of the encoder can keep building ordinary propositional formulas, and
remembers enough structure (pair -> constants, var -> bound) for the
transitivity generator and for counterexample decoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..logic.terms import BoolVar, Formula, Not, Var

__all__ = ["Bound", "SepVarRegistry"]

VAR_PREFIX = "$le"


@dataclass(frozen=True)
class Bound:
    """The difference bound ``lhs - rhs <= c``."""

    lhs: Var
    rhs: Var
    c: int

    def negation(self) -> "Bound":
        return Bound(self.rhs, self.lhs, -self.c - 1)

    def __str__(self) -> str:
        return "%s - %s <= %d" % (self.lhs.name, self.rhs.name, self.c)


class SepVarRegistry:
    """Allocates and tracks EIJ Boolean variables for difference bounds."""

    def __init__(self) -> None:
        # canonical (x, y, c) -> BoolVar, with x.uid < y.uid
        self._vars: Dict[Tuple[Var, Var, int], BoolVar] = {}
        self._bound_of: Dict[BoolVar, Bound] = {}
        # ordered pair (u, v) -> set of constants c with a literal u-v<=c
        self._constants: Dict[Tuple[Var, Var], Set[int]] = {}
        # canonical (x, y) -> BoolVar for offset-free equality x = y
        # (used by equality-only classes, Bryant–Velev style)
        self._eq_vars: Dict[Tuple[Var, Var], BoolVar] = {}
        self._eq_pair_of: Dict[BoolVar, Tuple[Var, Var]] = {}
        self.atom_var_count = 0  # vars created for original atoms
        self.derived_var_count = 0  # vars created during transitivity

    # -- literal construction ------------------------------------------------

    def literal(self, x: Var, y: Var, c: int, derived: bool = False) -> Formula:
        """Literal asserting ``x - y <= c`` (a BoolVar or its negation)."""
        if x is y:
            raise ValueError("bounds must relate two distinct constants")
        if x.uid < y.uid:
            return self._var(x, y, c, derived)
        return Not(self._var(y, x, -c - 1, derived))

    def _var(self, x: Var, y: Var, c: int, derived: bool) -> BoolVar:
        key = (x, y, c)
        var = self._vars.get(key)
        if var is None:
            var = BoolVar("%s:%s|%s|%d" % (VAR_PREFIX, x.name, y.name, c))
            self._vars[key] = var
            self._bound_of[var] = Bound(x, y, c)
            self._constants.setdefault((x, y), set()).add(c)
            self._constants.setdefault((y, x), set()).add(-c - 1)
            if derived:
                self.derived_var_count += 1
            else:
                self.atom_var_count += 1
        return var

    def eq_var(self, x: Var, y: Var, derived: bool = False) -> BoolVar:
        """Single Boolean variable for the offset-free equality ``x = y``.

        Used for *equality-only* classes, where one variable per pair and
        triangle constraints suffice (Bryant–Velev; the paper notes this
        subclass has only polynomially many transitivity constraints).
        """
        if x is y:
            raise ValueError("equality variables relate distinct constants")
        if x.uid > y.uid:
            x, y = y, x
        var = self._eq_vars.get((x, y))
        if var is None:
            var = BoolVar("$eq:%s|%s" % (x.name, y.name))
            self._eq_vars[(x, y)] = var
            self._eq_pair_of[var] = (x, y)
            if derived:
                self.derived_var_count += 1
            else:
                self.atom_var_count += 1
        return var

    def eq_pair_of(self, var: BoolVar) -> Optional[Tuple[Var, Var]]:
        """The pair an equality variable denotes (``None`` if foreign)."""
        return self._eq_pair_of.get(var)

    def eq_pairs(self) -> List[Tuple[Var, Var]]:
        return sorted(
            self._eq_vars, key=lambda p: (p[0].uid, p[1].uid)
        )

    # -- queries -------------------------------------------------------------

    def bound_of(self, var: BoolVar) -> Optional[Bound]:
        """The bound a registry variable denotes (``None`` for foreign vars)."""
        return self._bound_of.get(var)

    def bound_of_literal(self, literal: Formula) -> Optional[Bound]:
        if isinstance(literal, Not):
            inner = self.bound_of(literal.arg)
            return inner.negation() if inner is not None else None
        if isinstance(literal, BoolVar):
            return self.bound_of(literal)
        return None

    def constants(self, u: Var, v: Var) -> Set[int]:
        """Constants ``c`` for which a literal ``u - v <= c`` exists."""
        return self._constants.get((u, v), set())

    def pairs(self) -> List[Tuple[Var, Var]]:
        """All canonical pairs with at least one variable."""
        out = {(x, y) for (x, y, _) in self._vars}
        return sorted(out, key=lambda p: (p[0].uid, p[1].uid))

    def all_vars(self) -> List[BoolVar]:
        return sorted(self._bound_of, key=lambda v: v.name)

    def all_eq_vars(self) -> List[BoolVar]:
        return sorted(self._eq_pair_of, key=lambda v: v.name)

    def var_count(self) -> int:
        return len(self._bound_of)

    def cnf_var_ids(self, cnf: "object") -> List[int]:
        """CNF variable ids of the registry's EIJ/equality variables.

        ``cnf`` is a :class:`repro.sat.cnf.Cnf` built from a formula over
        this registry's variables (duck-typed to avoid an import cycle).
        Variables the Tseitin transform never saw are skipped, so the
        result is exactly the separation predicates that survived into
        the clause database — the preferred cube-splitting points for
        cube-and-conquer (paper §4: SepCnt counts these case splits).
        The order is deterministic (sorted ids).
        """
        lookup = getattr(cnf, "lookup")
        ids: Set[int] = set()
        for var in list(self._bound_of) + list(self._eq_pair_of):
            cnf_id = lookup(var)
            if cnf_id is not None:
                ids.add(cnf_id)
        return sorted(ids)

    # -- model decoding -------------------------------------------------------

    def asserted_bounds(self, model: Dict[BoolVar, bool]) -> List[Bound]:
        """Bounds asserted by a full/partial Boolean model.

        For each registry variable present in ``model``: its bound when
        assigned true, the negated bound when assigned false.
        """
        out: List[Bound] = []
        for var, bound in self._bound_of.items():
            if var not in model:
                continue
            out.append(bound if model[var] else bound.negation())
        return out
