"""Positive-equality (polarity) analysis on separation-logic formulas.

Following Bryant, German and Velev, every equation in the formula is
classified by the *polarity* of its occurrences: positive (even number of
enclosing negations), negative (odd), or both.  Symbolic constants that
occur **only inside positive equations** can be interpreted under *maximal
diversity* — distinct fresh values — which lets the encoders replace those
equations by constants.  The paper calls these constants :data:`V_p`; all
others are :data:`V_g`.

Rules (on ``F_sep``, i.e. after function elimination):

* the root formula is positive;
* ``not`` flips polarity, ``and``/``or`` preserve it, the antecedent of
  ``=>`` flips, ``iff`` makes both sides bipolar;
* a formula used as an ``ITE`` *condition* is bipolar (it can steer the
  enclosing atom either way);
* an equation whose polarity set is exactly ``{positive}`` is a *positive
  equation*; every ``<`` atom, and every equation that is negative or
  bipolar, makes all symbolic constants inside it general (``V_g``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    Term,
    Var,
)
from ..logic.traversal import iter_dag

__all__ = ["PolarityInfo", "analyze_polarity", "POS", "NEG"]

POS = 1
NEG = -1


@dataclass
class PolarityInfo:
    """Result of the analysis.

    Attributes
    ----------
    formula_polarity:
        formula node -> subset of {POS, NEG} under which it occurs.
    positive_equations:
        equations whose polarity is exactly {POS}.
    p_vars / g_vars:
        the paper's ``V_p`` and ``V_g`` partition of symbolic constants.
    """

    formula_polarity: Dict[Formula, FrozenSet[int]] = field(
        default_factory=dict
    )
    positive_equations: Set[Eq] = field(default_factory=set)
    p_vars: Set[Var] = field(default_factory=set)
    g_vars: Set[Var] = field(default_factory=set)

    def is_p(self, var: Var) -> bool:
        return var in self.p_vars


def analyze_polarity(formula: Formula) -> PolarityInfo:
    """Compute polarities and the V_p / V_g partition for ``F_sep``.

    ``formula`` must be application-free (run
    :func:`repro.transform.func_elim.eliminate_applications` first);
    a :class:`TypeError` is raised otherwise.
    """
    pol: Dict[Formula, Set[int]] = {}
    worklist: List[Tuple[Formula, int]] = [(formula, POS)]

    def push(node: Formula, polarity: int) -> None:
        entry = pol.setdefault(node, set())
        if polarity not in entry:
            entry.add(polarity)
            worklist.append((node, polarity))

    # Prime the worklist entry for the root.
    pol[formula] = {POS}

    while worklist:
        node, polarity = worklist.pop()
        if isinstance(node, (BoolConst, BoolVar)):
            continue
        if isinstance(node, Not):
            push(node.arg, -polarity)
        elif isinstance(node, (And, Or)):
            for arg in node.args:
                push(arg, polarity)
        elif isinstance(node, Implies):
            push(node.lhs, -polarity)
            push(node.rhs, polarity)
        elif isinstance(node, Iff):
            for side in (node.lhs, node.rhs):
                push(side, POS)
                push(side, NEG)
        elif isinstance(node, (Eq, Lt)):
            # Atom: formulas nested inside its terms are ITE conditions,
            # which are bipolar.
            for cond in _ite_conditions(node):
                push(cond, POS)
                push(cond, NEG)
        elif isinstance(node, PredApp):
            raise TypeError(
                "polarity analysis expects an application-free formula; "
                "found %r" % (node,)
            )
        else:
            raise TypeError("unknown formula kind: %r" % (type(node),))

    info = PolarityInfo(
        formula_polarity={n: frozenset(s) for n, s in pol.items()}
    )

    # Classify equations and collect V_g.
    general_vars: Set[Var] = set()
    all_vars: Set[Var] = set()
    for node, polarities in info.formula_polarity.items():
        if isinstance(node, Eq):
            atom_vars = _term_vars(node)
            all_vars.update(atom_vars)
            if polarities == frozenset({POS}):
                info.positive_equations.add(node)
            else:
                general_vars.update(atom_vars)
        elif isinstance(node, Lt):
            atom_vars = _term_vars(node)
            all_vars.update(atom_vars)
            general_vars.update(atom_vars)

    info.g_vars = general_vars
    info.p_vars = all_vars - general_vars
    return info


def _ite_conditions(atom: Formula) -> List[Formula]:
    """All ITE-condition formulas nested (at any depth) inside ``atom``."""
    out: List[Formula] = []
    stack: List[Term] = [t for t in atom.children()]
    seen: Set[int] = set()
    while stack:
        term = stack.pop()
        if id(term) in seen:
            continue
        seen.add(id(term))
        if isinstance(term, Ite):
            out.append(term.cond)
            stack.append(term.then)
            stack.append(term.els)
        elif isinstance(term, Offset):
            stack.append(term.base)
        elif isinstance(term, FuncApp):
            raise TypeError(
                "polarity analysis expects an application-free formula; "
                "found %r" % (term,)
            )
    return out


def _term_vars(atom: Formula) -> Set[Var]:
    """Symbolic constants in the *term* part of an atom.

    Constants that are only reachable through a nested ITE condition do not
    count as occurring in this atom — the condition is a formula of its own
    and its atoms are classified separately.
    """
    out: Set[Var] = set()
    stack: List[Term] = [t for t in atom.children()]
    seen: Set[int] = set()
    while stack:
        term = stack.pop()
        if id(term) in seen:
            continue
        seen.add(id(term))
        if isinstance(term, Var):
            out.add(term)
        elif isinstance(term, Offset):
            stack.append(term.base)
        elif isinstance(term, Ite):
            stack.append(term.then)
            stack.append(term.els)
    return out
