"""Ground-term computation for separation-logic formulas (paper §4 step 2).

Offsets are pushed through ITEs with the paper's rewrite rules::

    succ(pred(T))        -> T            (automatic: Offset nodes collapse)
    pred(succ(T))        -> T            (automatic)
    succ(ITE(F, T1, T2)) -> ITE(F, succ(T1), succ(T2))
    pred(ITE(F, T1, T2)) -> ITE(F, pred(T1), pred(T2))

until every leaf of every atom's term is a *ground term* ``v + k`` for a
symbolic constant ``v`` and integer ``k``.  :func:`enumerate_leaves` then
produces the guard/ground-term pairs ``(c_i, g_i)`` the per-constraint
encoding needs: ``T`` evaluates to ``g_i`` exactly when guard ``c_i`` holds.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Formula,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    Term,
    TRUE,
    Var,
)
from ..logic.traversal import postorder

__all__ = [
    "push_offsets",
    "push_offsets_term",
    "ground_terms_of",
    "enumerate_leaves",
    "leaf_count",
    "split_ground",
]


class _Pusher:
    """Offset pusher with memo tables shared across a whole formula.

    ``fmemo`` maps already-pushed formula nodes (ITE conditions reach it
    before their enclosing atoms because conditions are DAG children);
    ``tmemo`` maps ``(term, pending offset)`` pairs so shared sub-DAGs are
    pushed once per distinct pending offset.
    """

    def __init__(self) -> None:
        self.fmemo: Dict[Formula, Formula] = {}
        self.tmemo: Dict[Tuple[Term, int], Term] = {}

    def push_term(self, term: Term, k: int = 0) -> Term:
        key = (term, k)
        cached = self.tmemo.get(key)
        if cached is not None:
            return cached
        # Iterative worklist to survive deep ITE chains.
        stack: List[Tuple[Term, int]] = [(term, k)]
        while stack:
            node, off = stack[-1]
            if (node, off) in self.tmemo:
                stack.pop()
                continue
            if isinstance(node, Var):
                self.tmemo[(node, off)] = Offset(node, off)
                stack.pop()
            elif isinstance(node, Offset):
                inner = (node.base, off + node.k)
                if inner in self.tmemo:
                    self.tmemo[(node, off)] = self.tmemo[inner]
                    stack.pop()
                else:
                    stack.append(inner)
            elif isinstance(node, Ite):
                then_key = (node.then, off)
                els_key = (node.els, off)
                missing = [
                    kk for kk in (then_key, els_key) if kk not in self.tmemo
                ]
                if missing:
                    stack.extend(missing)
                else:
                    cond = self.fmemo.get(node.cond, node.cond)
                    self.tmemo[(node, off)] = Ite(
                        cond,
                        self.tmemo[then_key],
                        self.tmemo[els_key],
                    )
                    stack.pop()
            else:
                raise TypeError(
                    "offset pushing expects application-free terms; "
                    "found %r" % (type(node),)
                )
        return self.tmemo[key]

    def push_formula(self, formula: Formula) -> Formula:
        fmemo = self.fmemo
        for node in postorder(formula):
            if node in fmemo:
                continue
            if isinstance(node, Term):
                continue  # handled on demand at the atoms
            if isinstance(node, (BoolConst, BoolVar)):
                fmemo[node] = node
            elif isinstance(node, Not):
                fmemo[node] = Not(fmemo[node.arg])
            elif isinstance(node, And):
                fmemo[node] = And(*[fmemo[a] for a in node.args])
            elif isinstance(node, Or):
                fmemo[node] = Or(*[fmemo[a] for a in node.args])
            elif isinstance(node, Implies):
                fmemo[node] = Implies(fmemo[node.lhs], fmemo[node.rhs])
            elif isinstance(node, Iff):
                fmemo[node] = Iff(fmemo[node.lhs], fmemo[node.rhs])
            elif isinstance(node, Eq):
                fmemo[node] = Eq(
                    self.push_term(node.lhs), self.push_term(node.rhs)
                )
            elif isinstance(node, Lt):
                fmemo[node] = Lt(
                    self.push_term(node.lhs), self.push_term(node.rhs)
                )
            else:
                raise TypeError("unknown formula kind: %r" % (type(node),))
        return fmemo[formula]


def push_offsets_term(term: Term) -> Term:
    """Push all offsets in ``term`` down to the leaves."""
    return _Pusher().push_term(term, 0)


def push_offsets(formula: Formula) -> Formula:
    """Push offsets to the leaves throughout a separation-logic formula."""
    return _Pusher().push_formula(formula)


def split_ground(term: Term) -> Tuple[Var, int]:
    """Decompose a ground term into ``(base variable, offset)``."""
    if isinstance(term, Var):
        return term, 0
    if isinstance(term, Offset) and isinstance(term.base, Var):
        return term.base, term.k
    raise ValueError("not a ground term: %r" % (term,))


def ground_terms_of(term: Term) -> List[Term]:
    """All distinct ground-term leaves of an offset-pushed term."""
    out = set()
    seen = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Ite):
            stack.append(node.then)
            stack.append(node.els)
        else:
            split_ground(node)  # validates
            out.add(node)
    return sorted(out, key=lambda t: t.uid)


def _branch_postorder(term: Term) -> List[Term]:
    """Postorder over the subgraph reachable via ITE *branch* edges only."""
    seen = set()
    emitted = set()
    out: List[Term] = []
    stack = [term]
    while stack:
        node = stack[-1]
        if id(node) in emitted:
            stack.pop()
            continue
        if id(node) in seen:
            stack.pop()
            emitted.add(id(node))
            out.append(node)
            continue
        seen.add(id(node))
        if isinstance(node, Ite):
            for child in (node.then, node.els):
                if id(child) not in emitted:
                    stack.append(child)
    return out


def enumerate_leaves(term: Term) -> List[Tuple[Formula, Term]]:
    """Guarded leaves: ``[(c_i, g_i)]`` with ``T = g_i`` under guard ``c_i``.

    The term must be offset-pushed.  The number of pairs equals the number
    of root-to-leaf *paths*, which is what makes the per-constraint ITE
    elimination potentially expensive — exactly the cost the paper's
    ``SepCnt`` estimate upper-bounds.
    """
    memo: Dict[Term, List[Tuple[Formula, Term]]] = {}
    for node in _branch_postorder(term):
        if isinstance(node, Ite):
            memo[node] = [
                (And(node.cond, c), g) for c, g in memo[node.then]
            ] + [
                (And(Not(node.cond), c), g) for c, g in memo[node.els]
            ]
        else:
            split_ground(node)  # validates
            memo[node] = [(TRUE, node)]
    return memo[term]


def enumerate_leaf_paths(
    term: Term,
) -> List[Tuple[Tuple[Tuple[Formula, bool], ...], Term]]:
    """Like :func:`enumerate_leaves`, but guards stay as literal lists.

    Each result is ``(((cond, polarity), ...), ground_term)``: the ground
    term is reached when every ``cond`` evaluates to ``polarity``.  Encoders
    prefer this form because each condition formula must be *encoded* (its
    atoms replaced), which is easier before the conjunction is built.
    """
    memo: Dict[Term, List[Tuple[Tuple[Tuple[Formula, bool], ...], Term]]] = {}
    for node in _branch_postorder(term):
        if isinstance(node, Ite):
            memo[node] = [
                (((node.cond, True),) + path, g)
                for path, g in memo[node.then]
            ] + [
                (((node.cond, False),) + path, g)
                for path, g in memo[node.els]
            ]
        else:
            split_ground(node)  # validates
            memo[node] = [((), node)]
    return memo[term]


def leaf_count(term: Term) -> int:
    """Number of guarded leaves of ``term`` without materialising guards.

    This is the quantity the paper's SepCnt estimate multiplies: the number
    of ground terms a side of an atom can evaluate to (counted per path).
    """
    memo: Dict[Term, int] = {}
    for node in _branch_postorder(term):
        if isinstance(node, Ite):
            memo[node] = memo[node.then] + memo[node.els]
        else:
            memo[node] = 1
    return memo[term]
