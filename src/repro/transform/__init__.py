"""Validity-preserving transformations: function elimination, polarity
analysis (positive equality), and ground-term computation."""

from .func_elim import FuncElimInfo, eliminate_applications
from .ground import (
    enumerate_leaf_paths,
    enumerate_leaves,
    ground_terms_of,
    leaf_count,
    push_offsets,
    push_offsets_term,
    split_ground,
)
from .polarity import NEG, POS, PolarityInfo, analyze_polarity

__all__ = [
    "FuncElimInfo",
    "eliminate_applications",
    "enumerate_leaf_paths",
    "enumerate_leaves",
    "ground_terms_of",
    "leaf_count",
    "push_offsets",
    "push_offsets_term",
    "split_ground",
    "NEG",
    "POS",
    "PolarityInfo",
    "analyze_polarity",
]
