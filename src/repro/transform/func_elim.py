"""Elimination of uninterpreted function and predicate applications.

Implements the nested-ITE scheme of Bryant, German and Velev that the paper
uses (Section 2.1.1).  For a function symbol ``f`` with occurrences
``f(a1), f(a2), ...`` (in a fixed traversal order), fresh symbolic constants
``vf1, vf2, ...`` are introduced and the ``i``-th occurrence is replaced by::

    ITE(args_i = args_1, vf1,
        ITE(args_i = args_2, vf2,
            ... vfi))

which enforces functional consistency by construction.  Predicate
applications are eliminated the same way with fresh symbolic *Boolean*
constants and a formula-level if-then-else.

The result is a *separation logic* formula (``F_sep``): only symbolic
constants, offsets (succ/pred), ITEs, equations, inequalities and Boolean
connectives remain.

The elimination records, for every fresh constant, which symbol and
occurrence it came from (:class:`FuncElimInfo`); the positive-equality
analysis later uses the occurrence structure, and counterexample decoding
uses it to reconstruct function values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    Term,
    Var,
)
from ..logic.traversal import iter_dag, postorder

__all__ = ["FuncElimInfo", "eliminate_applications"]

FRESH_FUNC_PREFIX = "$vf"
FRESH_PRED_PREFIX = "$vp"


@dataclass
class FuncElimInfo:
    """Provenance of the fresh constants introduced by the elimination.

    Attributes
    ----------
    func_consts:
        symbol -> ordered list of ``(argument-tuple, fresh Var)``; the
        argument tuples are the *transformed* arguments, in occurrence order.
    pred_consts:
        symbol -> ordered list of ``(argument-tuple, fresh BoolVar)``.
    """

    func_consts: Dict[str, List[Tuple[Tuple[Term, ...], Var]]] = field(
        default_factory=dict
    )
    pred_consts: Dict[str, List[Tuple[Tuple[Term, ...], BoolVar]]] = field(
        default_factory=dict
    )

    def fresh_func_vars(self) -> List[Var]:
        out: List[Var] = []
        for entries in self.func_consts.values():
            out.extend(v for _, v in entries)
        return out

    def fresh_pred_vars(self) -> List[BoolVar]:
        out: List[BoolVar] = []
        for entries in self.pred_consts.values():
            out.extend(v for _, v in entries)
        return out


def _args_equal(args_a: Tuple[Term, ...], args_b: Tuple[Term, ...]) -> Formula:
    return And(*[Eq(a, b) for a, b in zip(args_a, args_b)])


def _formula_ite(cond: Formula, then: Formula, els: Formula) -> Formula:
    return Or(And(cond, then), And(Not(cond), els))


def eliminate_applications(formula: Formula) -> Tuple[Formula, FuncElimInfo]:
    """Return ``(F_sep, info)`` with all UF/UP applications eliminated.

    Fresh integer constants are named ``$vf<n>:<symbol>`` and fresh Boolean
    constants ``$vp<n>:<symbol>``; the ``$`` prefix keeps them out of the
    user's namespace (the parser rejects it is not required — user formulas
    simply should not use ``$``-prefixed names).
    """
    info = FuncElimInfo()
    counter = [0]
    # node -> replacement (Term for terms, Formula for formulas)
    memo: Dict[Node, Node] = {}

    def fresh_func(symbol: str) -> Var:
        counter[0] += 1
        return Var("%s%d:%s" % (FRESH_FUNC_PREFIX, counter[0], symbol))

    def fresh_pred(symbol: str) -> BoolVar:
        counter[0] += 1
        return BoolVar("%s%d:%s" % (FRESH_PRED_PREFIX, counter[0], symbol))

    def eliminate_func_app(node: FuncApp) -> Term:
        args = tuple(memo[a] for a in node.args)
        entries = info.func_consts.setdefault(node.symbol, [])
        var = fresh_func(node.symbol)
        result: Term = var
        # Build the ITE chain from the last previous occurrence inward so
        # that earlier occurrences are tested first (paper's ordering).
        for prev_args, prev_var in reversed(entries):
            result = Ite(_args_equal(args, prev_args), prev_var, result)
        entries.append((args, var))
        return result

    def eliminate_pred_app(node: PredApp) -> Formula:
        args = tuple(memo[a] for a in node.args)
        entries = info.pred_consts.setdefault(node.symbol, [])
        var = fresh_pred(node.symbol)
        result: Formula = var
        for prev_args, prev_var in reversed(entries):
            result = _formula_ite(
                _args_equal(args, prev_args), prev_var, result
            )
        entries.append((args, var))
        return result

    for node in postorder(formula):
        if isinstance(node, FuncApp):
            memo[node] = eliminate_func_app(node)
        elif isinstance(node, PredApp):
            memo[node] = eliminate_pred_app(node)
        elif isinstance(node, Var):
            memo[node] = node
        elif isinstance(node, Offset):
            memo[node] = Offset(memo[node.base], node.k)
        elif isinstance(node, Ite):
            memo[node] = Ite(memo[node.cond], memo[node.then], memo[node.els])
        elif isinstance(node, (BoolConst, BoolVar)):
            memo[node] = node
        elif isinstance(node, Not):
            memo[node] = Not(memo[node.arg])
        elif isinstance(node, And):
            memo[node] = And(*[memo[a] for a in node.args])
        elif isinstance(node, Or):
            memo[node] = Or(*[memo[a] for a in node.args])
        elif isinstance(node, Implies):
            memo[node] = Implies(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Iff):
            memo[node] = Iff(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Eq):
            memo[node] = Eq(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Lt):
            memo[node] = Lt(memo[node.lhs], memo[node.rhs])
        else:
            raise TypeError("unknown node kind: %r" % (type(node),))

    result = memo[formula]
    _assert_no_applications(result)
    return result, info


def _assert_no_applications(formula: Formula) -> None:
    for node in iter_dag(formula):
        if isinstance(node, (FuncApp, PredApp)):
            raise AssertionError(
                "application survived elimination: %r" % (node,)
            )
