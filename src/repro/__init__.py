"""repro — a hybrid SAT-based decision procedure for separation logic with
uninterpreted functions.

This library reproduces Seshia, Lahiri and Bryant, *"A Hybrid SAT-Based
Decision Procedure for Separation Logic with Uninterpreted Functions"*
(DAC 2003), end to end: the SUF logic front end, the eager small-domain
(SD), per-constraint (EIJ) and HYBRID propositional encodings, a CDCL SAT
solver, lazy (CVC-style) and case-splitting (SVC-style) baselines, the
paper's synthetic benchmark suite, and harnesses for every table and
figure in its evaluation.

Quickstart::

    from repro.logic import builders as b
    from repro import check_validity

    x, y = b.const("x"), b.const("y")
    f = b.func("f")
    formula = b.implies(b.eq(x, y), b.eq(f(x), f(y)))
    result = check_validity(formula, method="hybrid")
    assert result.valid

See ``examples/`` for runnable scenarios and ``repro.experiments`` for the
paper's evaluation.
"""

from .core.decision import check_validity
from .core.result import DecisionResult, DecisionStats
from .core.status import Status
from .logic import builders
from .logic.parser import parse_formula, parse_term
from .logic.printer import pretty, to_sexpr

__version__ = "1.0.0"

__all__ = [
    "check_validity",
    "DecisionResult",
    "DecisionStats",
    "Status",
    "builders",
    "parse_formula",
    "parse_term",
    "pretty",
    "to_sexpr",
    "__version__",
]
