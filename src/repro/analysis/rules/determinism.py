"""Determinism rules: the canonical-key / fingerprint contract.

The result cache and the batch dedupe path key verdicts on sha256
digests of canonical text (``logic/canonical.py``, ``service/cache.py``).
Those digests must be *process-stable*: equal across runs, interpreter
restarts, and machines.  Anything that leaks per-process state — object
identities, unordered ``set`` iteration, wall-clock time, randomness —
into a digest or serialized key silently partitions the cache (missed
hits at best, split-brain entries at worst).  ``RD204`` additionally
requires every persisted digest to fold in a version constant so schema
evolution invalidates old keys instead of misreading them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set

from ..core import (
    Finding,
    ModuleContext,
    Rule,
    register_rule,
    terminal_name,
)

__all__ = [
    "IdentityDependentOrder",
    "UnorderedIterationInDigest",
    "NondeterministicDigestInput",
    "UnversionedDigest",
]

_ORDER_CALLS = frozenset({"sorted", "min", "max"})

_HASH_CONSTRUCTORS = frozenset(
    {"sha256", "sha1", "sha512", "sha384", "sha3_256", "md5", "blake2b",
     "blake2s", "new"}
)

_NONDET_MODULES = {
    "time": "wall-clock time",
    "random": "unseeded module-level randomness",
    "secrets": "cryptographic randomness",
    "uuid": "random/host-derived identifiers",
}

_NONDET_CALLS = frozenset({"urandom", "getrandbits", "token_bytes",
                           "token_hex", "uuid1", "uuid4"})


def _is_set_expr(node: ast.AST) -> bool:
    """A value that is definitely an unordered ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra on set expressions stays a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _hash_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Functions that build a digest (call a hashlib constructor or
    ``.update``/``.hexdigest`` on one)."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = terminal_name(child.func)
                if name in _HASH_CONSTRUCTORS and _is_hashlib_call(child):
                    yield node
                    break
                if name in ("hexdigest", "digest"):
                    yield node
                    break


def _is_hashlib_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = terminal_name(func.value)
        return receiver == "hashlib"
    # Bare sha256(...) after `from hashlib import sha256`.
    return isinstance(func, ast.Name) and func.id in _HASH_CONSTRUCTORS


@register_rule
class IdentityDependentOrder(Rule):
    """``id()`` used where ordering or rendered output matters.

    ``id()`` as a memo-dictionary key is fine (it never escapes the
    process); ``id()`` driving a *sort order* or appearing in formatted
    output makes the result depend on the allocator and poisons anything
    digested from it.
    """

    code = "RD201"
    name = "identity-dependent-order"
    description = (
        "id() used as a sort key or inside formatted/digested output"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                callee = terminal_name(node.func)
                if callee in _ORDER_CALLS or callee in ("sort",):
                    for keyword in node.keywords:
                        if keyword.arg == "key" and _id_in_value(
                            keyword.value
                        ):
                            yield self.finding(
                                module,
                                keyword.value,
                                "sort key depends on id(); the resulting "
                                "order changes run to run — sort on "
                                "content instead",
                            )
                    if callee in _ORDER_CALLS and any(
                        _id_in_value(arg) for arg in node.args
                    ):
                        yield self.finding(
                            module,
                            node,
                            "%s() over id() values orders by allocation "
                            "address; order by content instead" % callee,
                        )
            elif isinstance(node, ast.FormattedValue) and _id_in_value(
                node.value
            ):
                yield self.finding(
                    module,
                    node,
                    "id() rendered into an f-string leaks a per-process "
                    "address into output",
                )


def _id_in_value(node: ast.AST) -> bool:
    """Whether ``id(...)``'s *result* flows into this expression's value.

    ``memo[id(x)]`` is exempt: there ``id`` is only a lookup key and the
    value comes from the mapping's contents.
    """
    if isinstance(node, ast.Name):
        return node.id == "id"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "id":
            return True
        return any(_id_in_value(arg) for arg in node.args) or any(
            _id_in_value(kw.value) for kw in node.keywords
        )
    if isinstance(node, ast.Subscript):
        return _id_in_value(node.value)
    return any(_id_in_value(child) for child in ast.iter_child_nodes(node))


@register_rule
class UnorderedIterationInDigest(Rule):
    """Unordered ``set`` iteration feeding order-sensitive output.

    Fires on (a) ``"sep".join(<set expr>)`` anywhere, and (b) any loop or
    comprehension over a bare ``set`` expression *inside a
    digest-building function* — there, iteration order flows into the
    key.  Wrap the iterable in ``sorted(...)``.
    """

    code = "RD202"
    name = "unordered-iteration-in-digest"
    description = (
        "iterating a set without sorted() where order reaches a join "
        "or a digest"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        digest_funcs = list(_hash_functions(module.tree))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                callee = terminal_name(node.func)
                if (
                    callee == "join"
                    and isinstance(node.func, ast.Attribute)
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node,
                        "join() over a set concatenates in arbitrary "
                        "order; wrap the set in sorted()",
                    )
        for func in digest_funcs:
            for node in ast.walk(func):
                iterables: List[ast.AST] = []
                if isinstance(node, ast.For):
                    iterables.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ):
                    iterables.extend(gen.iter for gen in node.generators)
                for iterable in iterables:
                    if _is_set_expr(iterable):
                        yield self.finding(
                            module,
                            iterable,
                            "iteration over a set inside digest-building "
                            "function %r; the visit order reaches the "
                            "key — use sorted()" % func.name,
                        )


@register_rule
class NondeterministicDigestInput(Rule):
    """Clock/randomness reachable inside a digest-building function.

    A function that constructs a hash must not also read ``time.*``,
    ``random.*``, ``os.urandom``, ``uuid.*`` or ``secrets.*`` — a key
    derived from any of them differs across runs, which defeats the
    cache and breaks the alpha-invariance guarantee.
    """

    code = "RD203"
    name = "nondeterministic-digest-input"
    description = (
        "time/random/urandom/uuid used inside a function that builds "
        "a digest"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for func in set(_hash_functions(module.tree)):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                func_expr = node.func
                if isinstance(func_expr, ast.Attribute) and isinstance(
                    func_expr.value, ast.Name
                ):
                    receiver = func_expr.value.id
                    if receiver in _NONDET_MODULES:
                        yield self.finding(
                            module,
                            node,
                            "%s.%s() (%s) called inside digest-building "
                            "function %r; keys must be process-stable"
                            % (
                                receiver,
                                func_expr.attr,
                                _NONDET_MODULES[receiver],
                                func.name,
                            ),
                        )
                        continue
                callee = terminal_name(func_expr)
                if callee in _NONDET_CALLS:
                    yield self.finding(
                        module,
                        node,
                        "%s() called inside digest-building function "
                        "%r; keys must be process-stable"
                        % (callee, func.name),
                    )


@register_rule
class UnversionedDigest(Rule):
    """A persisted digest that folds in no version constant.

    Every function producing a *persisted* key (``.hexdigest()``) must
    reference a module-level ``*_VERSION`` / ``*SCHEMA*`` constant in
    its body, so bumping the constant invalidates old entries instead
    of letting a layout change misread them.
    """

    code = "RD204"
    name = "unversioned-digest"
    description = (
        "a .hexdigest() key computed without referencing a "
        "*_VERSION/*SCHEMA* constant"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            hexdigest_call = None
            for child in ast.walk(node):
                if (
                    isinstance(child, ast.Call)
                    and terminal_name(child.func) == "hexdigest"
                ):
                    hexdigest_call = child
                    break
            if hexdigest_call is None:
                continue
            if not self._references_version(node):
                yield self.finding(
                    module,
                    hexdigest_call,
                    "function %r persists a hex digest without folding "
                    "in a *_VERSION/*SCHEMA* constant; schema changes "
                    "would be misread instead of invalidated"
                    % node.name,
                )

    @staticmethod
    def _references_version(func: ast.AST) -> bool:
        for child in ast.walk(func):
            name: Optional[str] = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            if name is not None and (
                name.endswith("_VERSION") or "SCHEMA" in name.upper()
            ):
                return True
        return False
