"""Concurrency rules: the bug shapes that race under the serve worker
pool and the portfolio driver.

``RC101`` and ``RC102`` encode the exact failure class fixed in PR 4
(the registry double-checked-locking race: the loaded flag was raised
*before* the builtins were registered, so a concurrent first caller
could observe a partial registry).  ``RC103`` catches process/thread
targets that cannot survive pickling or capture loop variables by
reference.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import (
    Finding,
    ModuleContext,
    Rule,
    is_lock_expr,
    register_rule,
    terminal_name,
)

__all__ = ["UnguardedSharedMutation", "DoubleCheckedFlagOrder",
           "UnpicklableWorkerTarget"]


def _attr_write_targets(stmt: ast.stmt) -> Iterable[Tuple[str, ast.AST]]:
    """Names mutated by ``stmt``: ``self.X`` roots and module globals.

    Yields ``(name, node)`` where ``name`` is ``"self.X"`` or a bare
    global name.  Covers plain/augmented assignment, subscript stores
    (``self.X[k] = v``), nested attribute stores (``self.X.Y = v``) and
    calls of known mutating methods (``self.X.append(...)``).
    """
    targets: List[ast.AST] = []
    if isinstance(stmt, (ast.Assign,)):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            targets = [func.value]
    for target in targets:
        root = _mutation_root(target)
        if root is not None:
            yield root, target


_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "update", "setdefault", "add", "discard",
        "move_to_end", "appendleft", "extendleft",
    }
)


def _mutation_root(target: ast.AST) -> Optional[str]:
    """``self.X`` / global ``X`` at the root of a store target."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    # Peel nested attributes down to the self.<root> level.
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        if node.id == "self" and chain:
            return "self.%s" % chain[-1]
        if not chain and node.id.isupper():
            # Module-level MUTABLE_GLOBAL mutated in place.
            return node.id
        if chain and node.id.isupper():
            return node.id
    return None


class _MethodScan:
    """Per-function mutation records, split by lock-guarded-ness."""

    def __init__(self) -> None:
        self.guarded: Set[str] = set()
        self.unguarded: Dict[str, List[Tuple[str, ast.AST]]] = {}

    def record(
        self, name: str, node: ast.AST, under_lock: bool, func_name: str
    ) -> None:
        if under_lock:
            self.guarded.add(name)
        else:
            self.unguarded.setdefault(name, []).append((func_name, node))


def _scan_statements(
    body: Iterable[ast.stmt],
    under_lock: bool,
    scan: _MethodScan,
    func_name: str,
) -> None:
    for stmt in body:
        if isinstance(stmt, ast.With):
            locked = under_lock or any(
                is_lock_expr(item.context_expr) for item in stmt.items
            )
            _scan_statements(stmt.body, locked, scan, func_name)
            continue
        for name, node in _attr_write_targets(stmt):
            scan.record(name, node, under_lock, func_name)
        for child_body_attr in ("body", "orelse", "finalbody"):
            child = getattr(stmt, child_body_attr, None)
            if child and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                _scan_statements(child, under_lock, scan, func_name)
        for handler in getattr(stmt, "handlers", []) or []:
            _scan_statements(handler.body, under_lock, scan, func_name)


@register_rule
class UnguardedSharedMutation(Rule):
    """Lock-guarded state mutated outside any ``with <lock>:`` block.

    An attribute (``self.X``) or UPPERCASE module global that is mutated
    under a lock anywhere is *defined* to be lock-guarded; every other
    mutation of it must also hold a lock.  ``__init__`` (construction
    happens-before publication) and methods whose name ends in
    ``_locked`` (the documented "caller holds the lock" convention) are
    exempt.
    """

    code = "RC101"
    name = "unguarded-shared-mutation"
    description = (
        "mutation of a lock-guarded attribute or module global outside "
        "a `with <lock>:` block"
    )

    _EXEMPT_METHODS = ("__init__", "__new__", "__post_init__")

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        # Class scope: one scan per class; module scope: one for globals.
        for scope_name, functions in _scopes(module.tree):
            scan = _MethodScan()
            for func in functions:
                exempt = func.name in self._EXEMPT_METHODS or (
                    func.name.endswith("_locked")
                )
                inner = _MethodScan()
                _scan_statements(func.body, False, inner, func.name)
                scan.guarded |= inner.guarded
                if exempt:
                    continue
                for name, records in inner.unguarded.items():
                    scan.unguarded.setdefault(name, []).extend(records)
            for name in sorted(scan.guarded):
                for func_name, node in scan.unguarded.get(name, []):
                    yield self.finding(
                        module,
                        node,
                        "%r is mutated under a lock elsewhere in %s but "
                        "written here (in %s) without holding a lock; "
                        "wrap in `with <lock>:`, rename the method with "
                        "a `_locked` suffix, or suppress with a "
                        "justification" % (name, scope_name, func_name),
                    )


def _scopes(tree: ast.Module):
    """Yield ``(scope_name, [function defs])`` for module + each class."""
    module_funcs = [
        stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    yield "module scope", module_funcs
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            methods = [
                item
                for item in stmt.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            yield "class %s" % stmt.name, methods


@register_rule
class DoubleCheckedFlagOrder(Rule):
    """Double-checked locking with the flag raised before the init.

    The PR 4 registry race: inside ``with <lock>:`` the guard flag was
    assigned ``True`` *before* the protected initialization ran, so a
    concurrent reader passing the unlocked fast-path check observed the
    flag up with the state still missing.  The rule fires when, inside a
    lock-guarded block whose flag is also tested by an ``if``, the
    ``<flag> = True`` assignment is followed by further statements.
    """

    code = "RC102"
    name = "double-checked-flag-order"
    description = (
        "inside `with <lock>:`, a guard flag is set True before the "
        "initialization it protects has finished"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            if not any(is_lock_expr(item.context_expr) for item in node.items):
                continue
            tested = _flags_tested(node)
            yield from self._check_body(module, node.body, tested)

    def _check_body(
        self,
        module: ModuleContext,
        body: List[ast.stmt],
        tested: Set[str],
    ) -> Iterable[Finding]:
        for index, stmt in enumerate(body):
            if isinstance(stmt, ast.If):
                yield from self._check_body(module, stmt.body, tested)
                yield from self._check_body(module, stmt.orelse, tested)
                continue
            flag = _true_flag_assignment(stmt)
            if flag is None or flag not in tested:
                continue
            trailing = [
                later
                for later in body[index + 1:]
                if not isinstance(later, (ast.Pass, ast.Return, ast.Break))
            ]
            if trailing:
                yield self.finding(
                    module,
                    stmt,
                    "guard flag %r is set True before the protected "
                    "initialization finishes (%d statement(s) follow "
                    "inside the locked block); move the flag assignment "
                    "last so a fast-path reader never sees the flag up "
                    "with the state missing" % (flag, len(trailing)),
                )


def _flags_tested(with_node: ast.With) -> Set[str]:
    """Names tested by ``if``s inside the with body (the re-check) —
    these are the candidates for double-checked guard flags."""
    tested: Set[str] = set()
    for node in ast.walk(with_node):
        if isinstance(node, ast.If):
            test = node.test
            if isinstance(test, ast.UnaryOp) and isinstance(
                test.op, ast.Not
            ):
                test = test.operand
            name = _flag_name(test)
            if name is not None:
                tested.add(name)
    return tested


def _flag_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        root = terminal_name(node)
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return "self.%s" % node.attr
        return root
    return None


def _true_flag_assignment(stmt: ast.stmt) -> Optional[str]:
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    if not (
        isinstance(stmt.value, ast.Constant) and stmt.value.value is True
    ):
        return None
    return _flag_name(stmt.targets[0])


@register_rule
class UnpicklableWorkerTarget(Rule):
    """Worker targets that break under spawn or capture loop variables.

    ``multiprocessing`` targets (``Process(target=...)``, ``Pool.map``/
    ``apply`` functions) must be importable module-level callables: a
    ``lambda`` or a function nested in the current function fails to
    pickle under the spawn start method.  A ``threading.Thread`` lambda
    target created inside a ``for`` loop captures the loop variable by
    reference — every thread sees the final iteration's value.
    """

    code = "RC103"
    name = "unpicklable-worker-target"
    description = (
        "multiprocessing target is a lambda/nested function, or a "
        "Thread lambda target captures a loop variable"
    )

    _PROCESS_CALLS = frozenset({"Process"})
    _POOL_METHODS = frozenset(
        {"map", "imap", "imap_unordered", "apply", "apply_async",
         "map_async", "starmap", "starmap_async"}
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        nested_defs = _nested_function_names(module.tree)
        for node, in_loop in _walk_with_loops(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = terminal_name(node.func)
            if callee in self._PROCESS_CALLS:
                target = _keyword(node, "target")
                yield from self._check_target(
                    module, target, nested_defs, process=True
                )
            elif callee == "Thread":
                target = _keyword(node, "target")
                if isinstance(target, ast.Lambda) and in_loop:
                    yield self.finding(
                        module,
                        target,
                        "Thread lambda target created inside a loop "
                        "captures the loop variable by reference; bind "
                        "it via args= or a default argument",
                    )
            elif callee in self._POOL_METHODS and node.args:
                func_arg = node.args[0]
                receiver = (
                    terminal_name(node.func.value)
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if receiver and "pool" in receiver.lower():
                    yield from self._check_target(
                        module, func_arg, nested_defs, process=True
                    )

    def _check_target(
        self,
        module: ModuleContext,
        target: Optional[ast.AST],
        nested_defs: Set[str],
        process: bool,
    ) -> Iterable[Finding]:
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            yield self.finding(
                module,
                target,
                "process target is a lambda, which cannot be pickled "
                "under the spawn start method; use a module-level "
                "function",
            )
        elif isinstance(target, ast.Name) and target.id in nested_defs:
            yield self.finding(
                module,
                target,
                "process target %r is a nested function, which cannot "
                "be pickled under the spawn start method; hoist it to "
                "module level" % target.id,
            )


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _nested_function_names(tree: ast.Module) -> Set[str]:
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(child.name)
    return nested


def _walk_with_loops(tree: ast.Module):
    """``ast.walk`` that also reports whether each node is inside a loop."""

    def visit(node: ast.AST, in_loop: bool):
        yield node, in_loop
        for child in ast.iter_child_nodes(node):
            yield from visit(
                child, in_loop or isinstance(node, (ast.For, ast.While))
            )

    yield from visit(tree, False)
