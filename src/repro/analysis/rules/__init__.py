"""Rule packs.  Importing this package registers every rule.

Four packs, one per invariant family the repo actually depends on:

* :mod:`.concurrency` — ``RC1xx``: lock discipline, double-checked
  locking order, worker-target picklability;
* :mod:`.determinism` — ``RD2xx``: process-stable canonical keys and
  fingerprints;
* :mod:`.contract` — ``RE3xx``: the engine registry/status/telemetry
  contract and exception hygiene in worker loops;
* :mod:`.perf` — ``RP4xx``: allocation and attribute-lookup discipline
  inside functions marked ``# repro: hot-loop`` (the SAT core's
  propagation loop).
"""

from . import concurrency, contract, determinism, perf

__all__ = ["concurrency", "contract", "determinism", "perf"]
