"""Rule packs.  Importing this package registers every rule.

Six packs, one per invariant family the repo actually depends on:

* :mod:`.concurrency` — ``RC1xx``: lock discipline, double-checked
  locking order, worker-target picklability; the flow-sensitive
  ``RC104``/``RC105`` (lock-order cycles, release-not-guaranteed) live
  in :mod:`repro.analysis.lockgraph`, imported here for registration;
* :mod:`.determinism` — ``RD2xx``: process-stable canonical keys and
  fingerprints;
* :mod:`.flow` — ``RD205``: unreachable code, the cheapest client of
  the CFG layer (:mod:`repro.analysis.cfg`);
* :mod:`.contract` — ``RE3xx``: the engine registry/status/telemetry
  contract and exception hygiene in worker loops;
* :mod:`.lifecycle` — ``RL5xx`` + ``RE305``: flow-sensitive resource
  lifecycles (process/pool/pipe/queue/file/socket/tempfile) and the
  Session/StageRecord finalize contract, on all exit paths including
  exception edges;
* :mod:`.perf` — ``RP4xx``: allocation and attribute-lookup discipline
  inside functions marked ``# repro: hot-loop`` (the SAT core's
  propagation loop).
"""

from .. import lockgraph
from . import concurrency, contract, determinism, flow, lifecycle, perf

__all__ = [
    "concurrency",
    "contract",
    "determinism",
    "flow",
    "lifecycle",
    "lockgraph",
    "perf",
]
