"""Performance rules for functions marked ``# repro: hot-loop``.

The SAT core's unit-propagation loop executes millions of times per
solve and was tuned profile-first (see ``docs/architecture.md``, "SAT
core memory layout"); two CPython cost classes kept reappearing during
that work and are worth pinning as lint rules rather than folklore:

* allocating a fresh container per iteration (``RP401``) — a tuple or
  list display inside the loop body turns every iteration into an
  allocator round-trip, which is exactly what the arena layout exists
  to avoid;
* re-resolving the same dotted attribute on every iteration
  (``RP402``) — CPython performs a dictionary lookup per ``a.b`` load,
  so hot loops cache attributes in locals once, before the loop.

Both rules fire *only* inside functions whose ``def`` line (or the
line directly above it) carries the ``# repro: hot-loop`` marker, so
ordinary code keeps its readability idioms; opting a function in is a
statement that its inner loops are measured and worth the strictness.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core import Finding, ModuleContext, Rule, register_rule

__all__ = [
    "HOT_LOOP_MARKER",
    "hot_loop_functions",
    "ContainerAllocationInHotLoop",
    "RepeatedAttributeLoadInHotLoop",
]

HOT_LOOP_MARKER = "repro: hot-loop"

#: Constructor calls that allocate a fresh container.
_ALLOCATING_CALLS = frozenset({"list", "dict", "set", "tuple"})


def hot_loop_functions(
    module: ModuleContext,
) -> Iterator[ast.FunctionDef]:
    """Functions opted into the perf rules via ``# repro: hot-loop``.

    The marker counts when it sits on the ``def`` line itself or on the
    comment line directly above it (decorators included).
    """
    marked_lines: Set[int] = set()
    for index, line in enumerate(module.lines, start=1):
        if HOT_LOOP_MARKER in line:
            marked_lines.add(index)
    if not marked_lines:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.lineno in marked_lines or node.lineno - 1 in marked_lines:
            yield node


def _loops(func: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While)):
            yield node


def _swap_value_tuples(func: ast.AST) -> Set[int]:
    """id()s of RHS tuples in the ``a, b = b, a`` swap idiom."""
    exempt: Set[int] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Tuple)
        ):
            exempt.add(id(node.value))
    return exempt


@register_rule
class ContainerAllocationInHotLoop(Rule):
    """A container allocated per iteration of a hot loop.

    Tuple/list/dict/set displays, comprehensions, and bare
    ``list()``/``dict()``/``set()``/``tuple()`` calls inside the loop
    body of a ``# repro: hot-loop`` function allocate on every
    iteration.  Hoist the container out of the loop, or restructure to
    parallel scalars/flat arrays (the arena idiom).  All-constant
    tuples (folded at compile time) and the ``a, b = b, a`` swap idiom
    (no heap tuple on CPython) are exempt.
    """

    code = "RP401"
    name = "container-allocation-in-hot-loop"
    description = (
        "tuple/list/dict/set allocated inside the loop body of a "
        "function marked '# repro: hot-loop'"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for func in hot_loop_functions(module):
            exempt = _swap_value_tuples(func)
            seen: Set[int] = set()
            for loop in _loops(func):
                for node in ast.walk(loop):
                    if id(node) in seen or node is loop:
                        continue
                    label = self._allocation_label(node, exempt)
                    if label is None:
                        continue
                    seen.add(id(node))
                    yield self.finding(
                        module,
                        node,
                        "%s allocated per iteration inside hot-loop "
                        "function %r; hoist it out of the loop or use "
                        "parallel scalars" % (label, func.name),
                    )

    @staticmethod
    def _allocation_label(
        node: ast.AST, exempt_tuples: Set[int]
    ) -> Optional[str]:
        if isinstance(node, ast.Tuple):
            if not isinstance(node.ctx, ast.Load):
                return None
            if id(node) in exempt_tuples:
                return None
            if all(isinstance(elt, ast.Constant) for elt in node.elts):
                return None
            return "tuple display"
        if isinstance(node, ast.List) and isinstance(node.ctx, ast.Load):
            return "list display"
        if isinstance(node, ast.Dict):
            return "dict display"
        if isinstance(node, ast.Set):
            return "set display"
        if isinstance(node, ast.ListComp):
            return "list comprehension"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.DictComp):
            return "dict comprehension"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _ALLOCATING_CALLS:
                return "%s() call" % node.func.id
        return None


def _dotted_path(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for attribute chains rooted at a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register_rule
class RepeatedAttributeLoadInHotLoop(Rule):
    """The same dotted attribute resolved twice in one hot-loop body.

    Each ``a.b`` load is a dictionary lookup in CPython; a chain
    repeated in a loop body pays it every iteration.  Cache the value
    in a local before the loop (``stats = self.stats``).  Occurrences
    inside a nested loop are charged to that inner loop only, so a
    chain is reported exactly once, at the innermost loop that repeats
    it.
    """

    code = "RP402"
    name = "repeated-attribute-load-in-hot-loop"
    description = (
        "the same dotted attribute loaded twice or more inside one "
        "loop body of a function marked '# repro: hot-loop'"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for func in hot_loop_functions(module):
            for loop in _loops(func):
                for path, node, count in self._repeated(loop):
                    yield self.finding(
                        module,
                        node,
                        "attribute chain %r loaded %d times per "
                        "iteration inside hot-loop function %r; cache "
                        "it in a local before the loop"
                        % (path, count, func.name),
                    )

    @staticmethod
    def _repeated(loop: ast.AST) -> Iterator[Tuple[str, ast.AST, int]]:
        """(path, first node, count) for chains loaded >= 2 times at
        this loop's own level (nested loops are excluded — they report
        for themselves)."""
        counts: Dict[str, List[ast.AST]] = {}

        def visit(node: ast.AST) -> None:
            if node is not loop and isinstance(node, (ast.For, ast.While)):
                return  # charged to the inner loop
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                path = _dotted_path(node)
                if path is not None:
                    counts.setdefault(path, []).append(node)
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(loop)
        repeated = {
            path for path, nodes in counts.items() if len(nodes) >= 2
        }
        for path in sorted(repeated):
            # A repeated longer chain subsumes its prefixes: caching
            # `self.stats.a` already caches the `self.stats` hop.
            if any(
                other.startswith(path + ".") for other in repeated
            ):
                continue
            nodes = counts[path]
            yield path, nodes[0], len(nodes)
