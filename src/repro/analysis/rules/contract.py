"""Engine-contract rules: the pluggable-engine layer's structural
invariants.

Every decision procedure lives behind the ``Engine`` protocol and the
registry; these rules check the *structure* of that contract across the
whole package (in the spirit of Lahiri/Ball/Cook's symbolic decision
procedure checking: verify the shape, don't sample the behaviour):
every concrete engine is registered, ``Status`` dispatch tables are
exhaustive, telemetry fields declared on the stats dataclasses are
actually threaded somewhere, and worker loops never swallow exceptions
invisibly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import (
    Finding,
    ModuleContext,
    Project,
    ProjectRule,
    Rule,
    register_rule,
    terminal_name,
)

__all__ = [
    "EngineRegisteredOnce",
    "StatusDispatchExhaustive",
    "StatsFieldThreaded",
    "SilentBroadExcept",
]

#: Engine subclasses that are themselves abstract bases, never registered.
_ABSTRACT_ENGINE_NAMES = frozenset({"Engine"})


def _class_defs(project: Project) -> Iterable[Tuple[ModuleContext, ast.ClassDef]]:
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield module, node


def _is_engine_subclass(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if terminal_name(base) == "Engine":
            return True
    return False


def _has_abstract_method(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                if terminal_name(decorator) in (
                    "abstractmethod",
                    "abstractproperty",
                ):
                    return True
    return False


@register_rule
class EngineRegisteredOnce(ProjectRule):
    """Every concrete ``Engine`` subclass reaches the registry.

    A concrete engine class (direct subclass of ``Engine`` without
    abstract methods) must be instantiated in at least one registration
    path — a ``register(...)`` call or an entry in the
    ``BUILTIN_ENGINES`` roster — and no registration expression may be
    textually duplicated (the same class with the same constructor
    arguments registered twice raises at import time at best, or
    silently shadows at worst).
    """

    code = "RE301"
    name = "engine-registered-once"
    description = (
        "a concrete Engine subclass is never registered, or the same "
        "registration is duplicated"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        engines: Dict[str, Tuple[ModuleContext, ast.ClassDef]] = {}
        for module, node in _class_defs(project):
            if (
                _is_engine_subclass(node)
                and node.name not in _ABSTRACT_ENGINE_NAMES
                and not _has_abstract_method(node)
            ):
                engines[node.name] = (module, node)
        if not engines:
            return

        registrations: Dict[str, List[Tuple[ModuleContext, ast.AST, str]]] = {
            name: [] for name in engines
        }
        for module in project.modules:
            for node in ast.walk(module.tree):
                for class_name, expr in _registration_exprs(node):
                    if class_name in registrations:
                        registrations[class_name].append(
                            (module, expr, ast.dump(expr))
                        )

        for class_name, (module, node) in sorted(engines.items()):
            sites = registrations[class_name]
            if not sites:
                yield self.finding(
                    module,
                    node,
                    "Engine subclass %r is never registered (no "
                    "register() call, no BUILTIN_ENGINES entry); it is "
                    "unreachable through the registry contract"
                    % class_name,
                )
                continue
            seen: Dict[str, Tuple[ModuleContext, ast.AST]] = {}
            for site_module, expr, dump in sites:
                if dump in seen:
                    yield self.finding(
                        site_module,
                        expr,
                        "duplicate registration of engine %r with "
                        "identical construction; the second register() "
                        "raises (or silently replaces)" % class_name,
                    )
                else:
                    seen[dump] = (site_module, expr)


def _registration_exprs(node: ast.AST) -> Iterable[Tuple[str, ast.AST]]:
    """Yield ``(engine class name, expr)`` for registration sites."""
    # register(SomeEngine(...)) / registry.register(SomeEngine(...))
    if isinstance(node, ast.Call) and terminal_name(node.func) == "register":
        for arg in node.args:
            name = _constructed_class(arg)
            if name is not None:
                yield name, arg
    # BUILTIN_ENGINES = (lambda: EagerEngine("sd"), LazyEngine, ...)
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "BUILTIN_ENGINES"
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                for element in node.value.elts:
                    name = _roster_entry_class(element)
                    if name is not None:
                        yield name, element


def _constructed_class(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name is not None and name[:1].isupper():
            return name
    return None


def _roster_entry_class(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Lambda):
        return _constructed_class(node.body)
    name = terminal_name(node)
    if name is not None and name[:1].isupper():
        return name
    return None


@register_rule
class StatusDispatchExhaustive(ProjectRule):
    """``Status``-keyed dispatch tables must cover every member.

    A dict literal with two or more ``Status.X`` keys is a dispatch
    table; unless it is consumed via ``.get(key, default)`` (an
    explicitly partial map with a fallback), it must name every member
    of the ``Status`` enum — a new member added to ``core/status.py``
    then fails the lint instead of raising ``KeyError`` at 3 a.m.
    """

    code = "RE302"
    name = "status-dispatch-exhaustive"
    description = (
        "a dict keyed by Status members omits some members and has no "
        ".get() default"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        members = _status_members(project)
        if not members:
            return
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Dict):
                    continue
                keyed = _status_keys(node)
                if len(keyed) < 2:
                    continue
                if _consumed_with_default(module.tree, node):
                    continue
                missing = sorted(members - keyed)
                if missing:
                    yield self.finding(
                        module,
                        node,
                        "Status dispatch table handles {%s} but not "
                        "{%s}; add the missing members or consume the "
                        "dict via .get(key, default)"
                        % (", ".join(sorted(keyed)), ", ".join(missing)),
                    )


def _status_members(project: Project) -> Set[str]:
    status_module = project.module_named("core/status.py")
    members: Set[str] = set()
    if status_module is None:
        return members
    for node in ast.walk(status_module.tree):
        if isinstance(node, ast.ClassDef) and node.name == "Status":
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    members.add(stmt.targets[0].id)
    return members


def _status_keys(node: ast.Dict) -> Set[str]:
    keyed: Set[str] = set()
    for key in node.keys:
        if (
            isinstance(key, ast.Attribute)
            and isinstance(key.value, ast.Name)
            and key.value.id == "Status"
        ):
            keyed.add(key.attr)
    return keyed


def _consumed_with_default(tree: ast.Module, dict_node: ast.Dict) -> bool:
    """``{...}.get(key, default)`` directly on this literal."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.func.value is dict_node
            and len(node.args) == 2
        ):
            return True
    return False


@register_rule
class StatsFieldThreaded(ProjectRule):
    """Every declared telemetry field is read or written somewhere.

    Fields on ``StageRecord`` / ``DecisionStats`` / ``CacheStats`` are
    the uniform telemetry contract; a field no stage implementation
    ever touches is dead weight that readers of ``--stats`` output will
    chase forever.  Each declared field must be referenced (attribute
    access or keyword argument) at least once outside
    ``core/result.py``.
    """

    code = "RE303"
    name = "stats-field-threaded"
    description = (
        "a StageRecord/DecisionStats/CacheStats field is never "
        "referenced outside its declaration"
    )

    _CLASSES = ("StageRecord", "DecisionStats", "CacheStats")

    def check_project(self, project: Project) -> Iterable[Finding]:
        result_module = project.module_named("core/result.py")
        if result_module is None:
            return
        declared: Dict[str, ast.AST] = {}
        for node in ast.walk(result_module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in self._CLASSES
            ):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        declared.setdefault(stmt.target.id, stmt)

        referenced: Set[str] = set()
        for module in project.modules:
            if module is result_module:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute):
                    referenced.add(node.attr)
                elif isinstance(node, ast.Call):
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            referenced.add(keyword.arg)

        for name, node in sorted(declared.items()):
            if name not in referenced:
                yield self.finding(
                    result_module,
                    node,
                    "stats field %r is declared but never referenced by "
                    "any stage implementation or reporter; thread it "
                    "through or remove it" % name,
                )


@register_rule
class SilentBroadExcept(Rule):
    """Bare ``except:`` anywhere; broad catches that swallow silently.

    A worker loop that catches ``Exception`` must *account* for the
    failure: bind the exception and use it (build an error response,
    log, attach to an outcome) or re-raise.  A handler that catches
    ``Exception``/``BaseException`` and does nothing hides crashed
    requests, poisoned cache writes, and dead portfolio members.
    """

    code = "RE304"
    name = "silent-broad-except"
    description = (
        "bare except:, or a broad except whose handler neither uses "
        "the exception nor re-raises"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt "
                    "too; catch a concrete exception type (or at most "
                    "Exception, bound and reported)",
                )
                continue
            if not self._is_broad(node.type):
                continue
            if self._handler_accounts(node):
                continue
            yield self.finding(
                module,
                node,
                "broad except %s swallows the failure silently; bind "
                "the exception and report it, re-raise, or narrow the "
                "type" % (self._type_text(node.type)),
            )

    def _is_broad(self, type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return terminal_name(type_node) in self._BROAD

    @staticmethod
    def _type_text(type_node: ast.AST) -> str:
        return ast.unparse(type_node)

    @staticmethod
    def _handler_accounts(node: ast.ExceptHandler) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return True
            if (
                node.name is not None
                and isinstance(child, ast.Name)
                and child.id == node.name
            ):
                return True
        return False
