"""Resource-lifecycle rules (RL5xx) and the stage/session contract (RE305).

All four rules share one flow-sensitive machinery built on the CFG
layer: track locals assigned from a *creator* call (``proc =
ctx.Process(...)``, ``fd, path = tempfile.mkstemp()``), follow the
may-open set through every path — crucially including the implicit
exception edge out of any statement that can raise — and report
resources still open when the function unwinds or returns.

The tracker is deliberately humble about aliasing: the moment a
resource *escapes* (returned, yielded, stored into a container or
attribute, passed as a call argument, captured by a nested function)
it is someone else's responsibility and tracking stops.  Two kinds of
call are not escapes: receiver-position method calls (``proc.start()``
uses the process, it does not leak it) and *arg-closers*
(``os.unlink(path)`` finalizes the temp path it receives).

:class:`StageRecordRule`'s specs flip one switch, ``escape_closes``:
for a ``StageRecord`` the contract is publish-early — appending the
record to the outcome's stage list (an escape) IS the finalization, and
it must happen before any statement that can raise, or the stage
vanishes from telemetry exactly when it matters (see
``engine/stages.py``, which appends before yielding).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..cfg import (
    EXC,
    Cfg,
    CfgBlock,
    ForwardAnalysis,
    dotted_name,
    function_cfgs,
    solve_forward,
)
from ..core import (
    Finding,
    FunctionInfo,
    ModuleContext,
    Rule,
    iter_functions,
    register_rule,
    terminal_name,
)

_WITH_TYPES = (ast.With, ast.AsyncWith)
_TRY_TYPES = (ast.Try,) + ((ast.TryStar,) if hasattr(ast, "TryStar") else ())
_DEF_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True)
class ResourceSpec:
    """How one family of resources is created and finalized."""

    kind: str  # human label: "process", "pool", "temp file", ...
    creators: FrozenSet[str]  # terminal callee names that create one
    closers: FrozenSet[str]  # receiver methods that finalize
    verb: str = "closed"  # past participle for the message
    arg_closers: FrozenSet[str] = field(default_factory=frozenset)
    #: Track these tuple-target indexes instead of a single name.
    tuple_elements: Optional[Tuple[int, ...]] = None
    #: Creator must be a bare ``Name`` call (``open``), not a method.
    name_call_only: bool = False
    #: Skip ``recv.Creator()`` for these receiver terminals (lowercased)
    #: — ``queue.Queue`` is the stdlib thread queue, which needs no close.
    exclude_receivers: FrozenSet[str] = field(default_factory=frozenset)
    #: Escaping (being published) counts as finalization — but only at
    #: the escape site, so a raise *before* the publish still reports.
    escape_closes: bool = False


_PROCESS_SPECS: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        kind="process",
        creators=frozenset({"Process"}),
        closers=frozenset({"join"}),
        verb="joined",
    ),
    ResourceSpec(
        kind="pool",
        creators=frozenset({"Pool", "ThreadPool"}),
        closers=frozenset({"close", "terminate"}),
        verb="closed",
    ),
    ResourceSpec(
        kind="pipe end",
        creators=frozenset({"Pipe"}),
        closers=frozenset({"close"}),
        tuple_elements=(0, 1),
    ),
    ResourceSpec(
        kind="queue",
        creators=frozenset({"Queue", "JoinableQueue"}),
        closers=frozenset({"close"}),
        exclude_receivers=frozenset({"queue"}),
    ),
    ResourceSpec(
        kind="file handle",
        creators=frozenset({"open"}),
        closers=frozenset({"close"}),
        name_call_only=True,
    ),
    ResourceSpec(
        kind="socket",
        creators=frozenset({"socket"}),
        closers=frozenset({"close", "detach"}),
    ),
)

_TEMPFILE_SPECS: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        kind="temp file",
        creators=frozenset({"mkstemp"}),
        closers=frozenset(),
        verb="removed",
        arg_closers=frozenset({"unlink", "remove", "replace", "rename"}),
        tuple_elements=(1,),  # the path; os.fdopen consumes the fd
    ),
    ResourceSpec(
        kind="temp directory",
        creators=frozenset({"mkdtemp"}),
        closers=frozenset(),
        verb="removed",
        arg_closers=frozenset({"rmtree", "rmdir"}),
    ),
)

_CONTRACT_SPECS: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        kind="session",
        creators=frozenset({"Session"}),
        closers=frozenset({"close"}),
    ),
    ResourceSpec(
        kind="stage record",
        creators=frozenset({"StageRecord"}),
        closers=frozenset({"finalize"}),
        verb="published",
        escape_closes=True,
    ),
)


def _creator_spec(
    call: ast.Call, specs: Tuple[ResourceSpec, ...]
) -> Optional[ResourceSpec]:
    func = call.func
    name = terminal_name(func)
    if name is None:
        return None
    for spec in specs:
        if name not in spec.creators:
            continue
        if spec.name_call_only and not isinstance(func, ast.Name):
            continue
        if isinstance(func, ast.Attribute):
            recv = terminal_name(func.value)
            if recv is not None and recv.lower() in spec.exclude_receivers:
                continue
        return spec
    return None


@dataclass
class _Resource:
    name: str
    spec: ResourceSpec
    stmt: ast.stmt  # the creating statement, for anchoring


def _stmt_scan_roots(stmt: ast.stmt) -> List[ast.AST]:
    """The parts of a statement evaluated *at its own block* — compound
    statements contribute only their header expression (bodies are
    separate blocks); nested defs contribute their whole subtree so
    closure captures register as escapes."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, _WITH_TYPES):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, _TRY_TYPES):
        return []
    if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def _scan_stmt(
    stmt: ast.stmt, tracked: Dict[str, ResourceSpec]
) -> Tuple[Set[str], Set[str]]:
    """``(closes, escapes)`` that executing this statement performs."""
    closes: Set[str] = set()
    escapes: Set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, _DEF_TYPES + (ast.Lambda,)):
            # Closure capture: any use inside hands off ownership.
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id in tracked
                ):
                    escapes.add(inner.id)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in tracked
            ):
                # Receiver-position method call: a use, not an escape.
                if func.attr in tracked[func.value.id].closers:
                    closes.add(func.value.id)
            else:
                visit(func)
            fname = terminal_name(func)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if (
                    isinstance(arg, ast.Name)
                    and arg.id in tracked
                    and fname is not None
                    and fname in tracked[arg.id].arg_closers
                ):
                    closes.add(arg.id)
                    continue
                visit(arg)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id in tracked:
                escapes.add(node.id)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for root in _stmt_scan_roots(stmt):
        visit(root)
    return closes, escapes


class _OpenSetAnalysis(ForwardAnalysis):
    """May-open resource names; union join over paths."""

    def __init__(
        self, creates: Dict[int, FrozenSet[str]], closes: Dict[int, FrozenSet[str]]
    ) -> None:
        self.creates = creates
        self.closes = closes

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: object, b: object) -> FrozenSet[str]:
        return frozenset(a) | frozenset(b)  # type: ignore[arg-type]

    def transfer(self, block: CfgBlock, state: object) -> FrozenSet[str]:
        empty: FrozenSet[str] = frozenset()
        return (
            frozenset(state) - self.closes.get(block.bid, empty)  # type: ignore[arg-type]
        ) | self.creates.get(block.bid, empty)

    def edge_state(
        self, block: CfgBlock, kind: str, state_in: object, state_out: object
    ) -> object:
        # Exception during the statement: the create did not happen,
        # but a finalizer raising mid-``finally`` still counts as
        # finalized — without this, ``finally: h.close()`` would keep
        # the handle "open" into the raise exit.
        if kind == EXC:
            return frozenset(state_in) - self.closes.get(  # type: ignore[arg-type]
                block.bid, frozenset()
            )
        return state_out


def _check_lifecycle(
    code: str,
    module: ModuleContext,
    info: FunctionInfo,
    specs: Tuple[ResourceSpec, ...],
) -> Iterator[Finding]:
    cfg = function_cfgs(module, info.node)

    resources: Dict[str, _Resource] = {}
    creates_at: Dict[int, Set[str]] = {}
    for block in cfg.blocks:
        stmt = block.stmt
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        value = stmt.value
        if not isinstance(value, ast.Call):
            continue
        spec = _creator_spec(value, specs)
        if spec is None:
            continue
        target = stmt.targets[0]
        names: List[str] = []
        if spec.tuple_elements is not None:
            if isinstance(target, ast.Tuple):
                for idx in spec.tuple_elements:
                    if idx < len(target.elts) and isinstance(
                        target.elts[idx], ast.Name
                    ):
                        names.append(target.elts[idx].id)  # type: ignore[attr-defined]
        elif isinstance(target, ast.Name):
            names.append(target.id)
        for name in names:
            resources[name] = _Resource(name, spec, stmt)
            creates_at.setdefault(block.bid, set()).add(name)
    if not resources:
        return

    tracked = {name: res.spec for name, res in resources.items()}
    closes_at: Dict[int, Set[str]] = {}
    exempt: Set[str] = set()
    for block in cfg.blocks:
        if block.stmt is None:
            continue
        closes, escapes = _scan_stmt(block.stmt, tracked)
        for name in escapes:
            if tracked[name].escape_closes:
                closes.add(name)  # publish-at-this-statement
            else:
                exempt.add(name)  # someone else's responsibility now
        if closes:
            closes_at.setdefault(block.bid, set()).update(closes)

    live = {name for name in resources if name not in exempt}
    if not live:
        return

    analysis = _OpenSetAnalysis(
        creates={
            bid: frozenset(n for n in names if n in live)
            for bid, names in creates_at.items()
        },
        closes={
            bid: frozenset(n for n in names if n in live)
            for bid, names in closes_at.items()
        },
    )
    in_states, _ = solve_forward(cfg, analysis)

    leaks: Dict[str, str] = {}
    for exit_bid, how in (
        (cfg.raise_exit, "when an exception escapes"),
        (cfg.exit, "on a return path"),
    ):
        state = in_states.get(exit_bid)
        if not state:
            continue
        for name in sorted(frozenset(state)):  # type: ignore[arg-type]
            leaks.setdefault(name, how)

    for name in sorted(leaks):
        res = resources[name]
        hint = (
            "publish it (append/pass it on) immediately after creation"
            if res.spec.escape_closes
            else "finalize it in a finally/with"
        )
        yield Finding(
            code=code,
            path=module.path,
            line=res.stmt.lineno,
            col=res.stmt.col_offset,
            message=(
                "%s '%s' created here may never be %s %s — %s"
                % (res.spec.kind, name, res.spec.verb, leaks[name], hint)
            ),
        )


class _LifecycleRule(Rule):
    """Shared driver; subclasses pick the spec family."""

    specs: Tuple[ResourceSpec, ...] = ()

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for info in iter_functions(module.tree):
            yield from _check_lifecycle(self.code, module, info, self.specs)


@register_rule
class ResourceNotFinalizedRule(_LifecycleRule):
    code = "RL501"
    name = "resource-not-finalized"
    description = (
        "A process/pool/pipe/queue/file/socket assigned to a local may "
        "never be joined/closed on some exit path — including the "
        "implicit exception edge out of any statement that can raise.  "
        "Resources that escape (returned, stored, passed on, captured "
        "by a closure) are exempt; join/close in a finally or use a "
        "with block to fix."
    )
    specs = _PROCESS_SPECS


@register_rule
class TerminateWithoutJoinRule(Rule):
    code = "RL502"
    name = "terminate-without-join"
    description = (
        "proc.terminate() with no reachable proc.join() afterwards: "
        "SIGTERM delivery is asynchronous, and without the join the "
        "child can linger as a zombie holding queue feeder threads "
        "open.  Always follow terminate with a (bounded) join on the "
        "same object."
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for info in iter_functions(module.tree):
            cfg = function_cfgs(module, info.node)
            for block in cfg.blocks:
                receiver = _method_call_receiver(block.stmt, "terminate")
                if receiver is None:
                    continue
                if not self._join_reachable(cfg, block, receiver):
                    assert block.stmt is not None
                    yield self.finding(
                        module,
                        block.stmt,
                        "'%s.terminate()' has no reachable '%s.join()' "
                        "after it — terminated children must still be "
                        "joined" % (receiver, receiver),
                    )

    @staticmethod
    def _join_reachable(cfg: Cfg, start: CfgBlock, receiver: str) -> bool:
        seen = {start.bid}
        stack = [succ for succ, _ in start.succs]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            block = cfg.blocks[bid]
            if _method_call_receiver(block.stmt, "join") == receiver:
                return True
            stack.extend(succ for succ, _ in block.succs)
        return False


def _method_call_receiver(
    stmt: Optional[ast.stmt], method: str
) -> Optional[str]:
    """Dotted receiver of a ``recv.method(...)`` statement, if that is
    what the statement is."""
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == method:
        return dotted_name(func.value)
    return None


@register_rule
class TempfileCleanupRule(_LifecycleRule):
    code = "RL503"
    name = "tempfile-not-removed"
    description = (
        "A mkstemp path or mkdtemp directory may survive an exception "
        "path: the creating function raises (or returns) without "
        "os.unlink/os.replace/shutil.rmtree reaching it on every path.  "
        "Leaked temp files accumulate silently in shared cache "
        "directories; remove them in a finally or an except-reraise."
    )
    specs = _TEMPFILE_SPECS


@register_rule
class StageRecordRule(_LifecycleRule):
    code = "RE305"
    name = "stage-finalize-contract"
    description = (
        "An engine Session or StageRecord is opened without guaranteed "
        "finalization on raise paths.  Sessions must close() in a "
        "finally (or escape to an owner that will); StageRecords must "
        "be published (appended to the outcome's stage list or passed "
        "to the consumer) immediately after creation — the publish-"
        "early contract of StageClock.stage — or the stage silently "
        "disappears from telemetry exactly when a stage blows up."
    )
    specs = _CONTRACT_SPECS
