"""RD205: statements no path from the function entry can reach.

The cheapest client of the CFG layer: build the graph, take the
reachable set from entry, report owned statements whose block is never
reached.  Cascades are collapsed — a dead statement is only reported if
neither its previous sibling nor any enclosing statement is itself
dead, so one ``return`` followed by ten lines yields one finding at the
first dead line.

Infinite loops do not trip the rule: loop headers always get a false
edge (a ``while True`` analysis would need constant folding, and the
tree's long-running service loops all have ``break``/``raise`` exits
anyway), so code after a loop is considered live.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from ..cfg import function_cfgs
from ..core import Finding, ModuleContext, Rule, iter_functions, register_rule

_OWN_BODY_FIELDS = ("body", "orelse", "finalbody")
_DEF_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _parent_map(func: ast.AST) -> Dict[ast.stmt, ast.stmt]:
    """Owned statement -> enclosing owned statement (if any)."""
    parents: Dict[ast.stmt, ast.stmt] = {}

    def walk(body: List[ast.stmt], parent: ast.stmt) -> None:
        for stmt in body:
            if parent is not None:
                parents[stmt] = parent
            if isinstance(stmt, _DEF_TYPES):
                continue
            for name in _OWN_BODY_FIELDS:
                child = getattr(stmt, name, None)
                if child:
                    walk(child, stmt)
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body, stmt)
            for case in getattr(stmt, "cases", []) or []:
                walk(case.body, stmt)

    for stmt in func.body:
        if isinstance(stmt, _DEF_TYPES):
            continue
        for name in _OWN_BODY_FIELDS:
            child = getattr(stmt, name, None)
            if child:
                walk(child, stmt)
        for handler in getattr(stmt, "handlers", []) or []:
            walk(handler.body, stmt)
        for case in getattr(stmt, "cases", []) or []:
            walk(case.body, stmt)
    return parents


@register_rule
class UnreachableCodeRule(Rule):
    code = "RD205"
    name = "unreachable-code"
    description = (
        "No path from the function entry reaches this statement — it "
        "follows a return/raise/break/continue on every route, or sits "
        "in a branch nothing takes.  Dead code drifts: it stops being "
        "updated with the invariants around it and misleads readers "
        "about what the function does.  Delete it, or fix the control "
        "flow if it was meant to run."
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for info in iter_functions(module.tree):
            cfg = function_cfgs(module, info.node)
            dead = cfg.unreachable_stmts()
            if not dead:
                continue
            dead_set = set(dead)
            parents = _parent_map(info.node)
            for stmt in dead:
                prev = cfg.prev_sibling.get(stmt)
                if prev is not None and prev in dead_set:
                    continue  # same dead region as its predecessor
                enclosing = parents.get(stmt)
                covered = False
                while enclosing is not None:
                    if enclosing in dead_set:
                        covered = True
                        break
                    enclosing = parents.get(enclosing)
                if covered:
                    continue
                yield self.finding(
                    module,
                    stmt,
                    "unreachable: every path to this statement exits "
                    "earlier (after a return/raise/break/continue)",
                )
