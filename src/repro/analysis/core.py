"""The lint framework core: findings, rules, suppressions, the runner.

This is a *repo-specific* static analysis layer, not a general linter:
the rule packs under :mod:`repro.analysis.rules` encode invariants that
generic tools cannot know about — which attributes are lock-guarded,
which digests must be process-stable, what the engine registry contract
is.  The framework itself is deliberately small:

* :class:`ModuleContext` — one parsed file (source, AST, per-line
  suppressions);
* :class:`Project` — every parsed file, for cross-file rules
  (engine-registration counting, stats-field threading);
* :class:`Rule` / :class:`ProjectRule` — a check emitting
  :class:`Finding`\\ s, registered via :func:`register_rule`;
* :func:`analyze_paths` — parse, run every rule, filter suppressed
  findings, return the rest sorted by location.

Suppression syntax (see ``docs/static-analysis.md``)::

    risky_line()  # repro: ignore[RC101] -- guarded by caller's lock

A suppression comment applies to findings on its own line; a standalone
comment line applies to the line directly below it.  ``repro: ignore``
without a bracket list suppresses every rule on that line.  The ``--``
justification is free text; write one — a bare suppression tells the
next reader nothing.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Type

__all__ = [
    "Finding",
    "ModuleContext",
    "Project",
    "Rule",
    "ProjectRule",
    "SuppressionRecord",
    "register_rule",
    "all_rules",
    "rules_by_code",
    "analyze_paths",
    "analyze_project",
    "iter_python_files",
    "LOCK_NAME_RE",
    "is_lock_expr",
]

#: Terminal identifiers that denote a lock object.  The boundary group
#: keeps ``clock`` (the stage timer) from matching ``lock``.
LOCK_NAME_RE = re.compile(r"(?:^|_)(r?lock|mutex)s?$", re.IGNORECASE)

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
    r"(?:\s*--\s*(?P<why>\S.*?)\s*$)?"
)


@dataclass(frozen=True)
class SuppressionRecord:
    """One suppression comment, for the suppression-debt report."""

    path: str
    line: int
    codes: Optional[FrozenSet[str]]  # ``None`` = blanket (every rule)
    why: Optional[str]  # the ``-- why`` justification text, if any

    def codes_text(self) -> str:
        return "*" if self.codes is None else ",".join(sorted(self.codes))


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return "%s:%d:%d" % (self.path, self.line, self.col + 1)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "message": self.message,
        }


class ModuleContext:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: line number -> suppressed codes (``None`` = every rule).
        self.suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
        #: Every suppression comment verbatim, for the debt report.
        self.suppression_records: List[SuppressionRecord] = []
        self._collect_suppressions()

    @classmethod
    def parse(cls, path: str, display_path: Optional[str] = None) -> "ModuleContext":
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
        return cls(display_path or path, source, tree)

    def _collect_suppressions(self) -> None:
        for index, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes_text = match.group("codes")
            codes: Optional[FrozenSet[str]] = None
            if codes_text is not None:
                codes = frozenset(
                    code.strip().upper()
                    for code in codes_text.split(",")
                    if code.strip()
                )
            self.suppression_records.append(
                SuppressionRecord(
                    path=self.path,
                    line=index,
                    codes=codes,
                    why=match.group("why"),
                )
            )
            # A comment-only line shields the line below; an inline
            # comment shields its own line.
            target = index
            if line.lstrip().startswith("#"):
                target = index + 1
            existing = self.suppressions.get(target, frozenset())
            if codes is None or existing is None:
                self.suppressions[target] = None
            else:
                self.suppressions[target] = existing | codes

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.suppressions.get(finding.line, frozenset())
        if codes is None:
            return True
        return finding.code.upper() in codes


class Project:
    """Every parsed module, for rules that need cross-file context."""

    def __init__(self, modules: List[ModuleContext]) -> None:
        self.modules = modules
        self.by_path = {module.path: module for module in modules}

    def module_named(self, suffix: str) -> Optional[ModuleContext]:
        """The module whose path ends with ``suffix`` (posix-style)."""
        normalized = suffix.replace(os.sep, "/")
        for module in self.modules:
            if module.path.replace(os.sep, "/").endswith(normalized):
                return module
        return None


class Rule:
    """One per-module check.  Subclasses set the metadata and ``check``."""

    #: Stable identifier, e.g. ``RC101`` (R=repro, C=concurrency pack).
    code: str = ""
    #: Short kebab-case name shown in ``--list-rules``.
    name: str = ""
    #: One-paragraph description for the rule catalog.
    description: str = ""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=self.code,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A check that needs to see every module at once."""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code:
        raise ValueError("rule %r has no code" % (cls,))
    if cls.code in _RULES:
        raise ValueError("duplicate rule code %r" % cls.code)
    _RULES[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, in code order."""
    _load_rule_packs()
    return [_RULES[code]() for code in sorted(_RULES)]


def rules_by_code(codes: Iterable[str]) -> List[Rule]:
    _load_rule_packs()
    instances = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in _RULES:
            raise KeyError(
                "unknown rule %r; known: %s"
                % (code, ", ".join(sorted(_RULES)))
            )
        instances.append(_RULES[normalized]())
    return instances


def _load_rule_packs() -> None:
    # Import for the registration side effect; deferred to avoid a cycle
    # (rule modules import this module for the base classes).
    from . import rules as _rules  # noqa: F401


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        seen.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            seen.append(path)
        else:
            raise ValueError(
                "not a Python file or directory: %r" % (path,)
            )
    return iter(seen)


def analyze_project(
    project: Project, rules: Optional[List[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` (default: all) over an already-parsed project."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(project):
                module = project.by_path.get(finding.path)
                if module is None or not module.is_suppressed(finding):
                    findings.append(finding)
            continue
        for module in project.modules:
            for finding in rule.check(module):
                if not module.is_suppressed(finding):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def analyze_paths(
    paths: Iterable[str], rules: Optional[List[Rule]] = None
) -> List[Finding]:
    """Parse every ``.py`` file under ``paths`` and run the rules."""
    modules = [
        ModuleContext.parse(path) for path in iter_python_files(paths)
    ]
    return analyze_project(Project(modules), rules)


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rule packs
# ---------------------------------------------------------------------------


def terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a ``Name`` or dotted ``Attribute``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def is_lock_expr(node: ast.AST) -> bool:
    """Whether a ``with`` item's context expression denotes a lock."""
    name = terminal_name(node)
    return name is not None and LOCK_NAME_RE.search(name) is not None


@dataclass
class FunctionInfo:
    """A function plus its enclosing class name (if any)."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    nested: bool = False


def iter_functions(tree: ast.Module) -> Iterator[FunctionInfo]:
    """Every function definition, with class context and nesting flag."""

    def walk(
        body: List[ast.stmt],
        class_name: Optional[str],
        nested: bool,
    ) -> Iterator[FunctionInfo]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield FunctionInfo(stmt, class_name, nested)
                yield from walk(stmt.body, class_name, True)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body, stmt.name, nested)
            elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With,
                                   ast.Try)):
                for child_body in _stmt_bodies(stmt):
                    yield from walk(child_body, class_name, nested)

    yield from walk(tree.body, None, False)


def _stmt_bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        body = getattr(stmt, attr, None)
        if body:
            yield body
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body
