"""Finding reporters: human lines, machine JSON, SARIF 2.1.0, and the
suppression-debt report."""

from __future__ import annotations

import json
import os
from typing import IO, Dict, List, Optional

from .core import Finding, Rule, SuppressionRecord

__all__ = [
    "render_human",
    "render_json",
    "render_sarif",
    "render_rule_catalog",
    "render_suppressions",
    "write_report",
]


def render_human(findings: List[Finding], checked_files: int) -> str:
    """``path:line:col: CODE message`` lines plus a summary tail."""
    lines = [
        "%s: %s %s" % (finding.location(), finding.code, finding.message)
        for finding in findings
    ]
    if findings:
        lines.append(
            "%d finding(s) in %d file(s)"
            % (len(findings), len({f.path for f in findings}))
        )
    else:
        lines.append("clean: 0 findings in %d file(s)" % checked_files)
    return "\n".join(lines)


def render_json(findings: List[Finding], checked_files: int) -> str:
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload = {
        "findings": [finding.to_jsonable() for finding in findings],
        "summary": {
            "findings": len(findings),
            "files_checked": checked_files,
            "files_with_findings": len({f.path for f in findings}),
            "by_code": by_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_uri(path: str) -> str:
    return path.replace(os.sep, "/")


def render_sarif(findings: List[Finding], rules: List[Rule]) -> str:
    """A minimal-but-valid SARIF 2.1.0 log (one run, one driver).

    Only rules that actually fired are listed in the driver (CI diff
    noise stays proportional to findings); every result carries the
    physical location GitHub code scanning needs to annotate a PR.
    """
    fired = {finding.code for finding in findings}
    rule_meta = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
        if rule.code in fired
    ]
    # Synthetic codes (e.g. the CLI-layer RS901 suppression-debt check)
    # still need a driver entry for a well-formed ruleIndex.
    covered = {meta["id"] for meta in rule_meta}
    for code in sorted(fired - covered):
        rule_meta.append(
            {
                "id": code,
                "name": code.lower(),
                "shortDescription": {"text": code},
                "fullDescription": {"text": code},
                "defaultConfiguration": {"level": "error"},
            }
        )
    rule_index = {meta["id"]: idx for idx, meta in enumerate(rule_meta)}
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(finding.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": (
                            "https://example.invalid/docs/static-analysis"
                        ),
                        "rules": rule_meta,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def render_suppressions(records: List[SuppressionRecord]) -> str:
    """The ``--list-suppressions`` debt report."""
    if not records:
        return "no suppressions in the checked files"
    lines = []
    missing = 0
    for record in sorted(records, key=lambda r: (r.path, r.line)):
        why = record.why if record.why else "(no justification)"
        if not record.why:
            missing += 1
        lines.append(
            "%s:%d: ignore[%s] %s"
            % (record.path, record.line, record.codes_text(), why)
        )
    lines.append(
        "%d suppression(s), %d without a '-- why' justification"
        % (len(records), missing)
    )
    return "\n".join(lines)


def render_rule_catalog(rules: List[Rule]) -> str:
    """The ``--list-rules`` table."""
    lines = []
    for rule in rules:
        lines.append("%s  %s" % (rule.code, rule.name))
        lines.append("       %s" % rule.description)
    return "\n".join(lines)


def write_report(
    out: IO[str],
    findings: List[Finding],
    checked_files: int,
    fmt: str = "human",
    rules: Optional[List[Rule]] = None,
) -> None:
    if fmt == "json":
        out.write(render_json(findings, checked_files) + "\n")
    elif fmt == "sarif":
        out.write(render_sarif(findings, rules or []) + "\n")
    else:
        out.write(render_human(findings, checked_files) + "\n")
