"""Finding reporters: human-readable lines and machine-readable JSON."""

from __future__ import annotations

import json
from typing import IO, Dict, List

from .core import Finding, Rule

__all__ = [
    "render_human",
    "render_json",
    "render_rule_catalog",
    "write_report",
]


def render_human(findings: List[Finding], checked_files: int) -> str:
    """``path:line:col: CODE message`` lines plus a summary tail."""
    lines = [
        "%s: %s %s" % (finding.location(), finding.code, finding.message)
        for finding in findings
    ]
    if findings:
        lines.append(
            "%d finding(s) in %d file(s)"
            % (len(findings), len({f.path for f in findings}))
        )
    else:
        lines.append("clean: 0 findings in %d file(s)" % checked_files)
    return "\n".join(lines)


def render_json(findings: List[Finding], checked_files: int) -> str:
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload = {
        "findings": [finding.to_jsonable() for finding in findings],
        "summary": {
            "findings": len(findings),
            "files_checked": checked_files,
            "files_with_findings": len({f.path for f in findings}),
            "by_code": by_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog(rules: List[Rule]) -> str:
    """The ``--list-rules`` table."""
    lines = []
    for rule in rules:
        lines.append("%s  %s" % (rule.code, rule.name))
        lines.append("       %s" % rule.description)
    return "\n".join(lines)


def write_report(
    out: IO[str],
    findings: List[Finding],
    checked_files: int,
    fmt: str = "human",
) -> None:
    if fmt == "json":
        out.write(render_json(findings, checked_files) + "\n")
    else:
        out.write(render_human(findings, checked_files) + "\n")
