"""Repo-specific static analysis: concurrency, determinism, flow,
lifecycle, and engine-contract lints.

Run it as ``repro analyze <dir-or-files>`` (or
``python -m repro analyze src/repro``); exit status 1 means findings.
See ``docs/static-analysis.md`` for the rule catalog, the suppression
syntax, the flow-sensitive CFG layer, and how to add a rule.

Public API::

    from repro.analysis import analyze_paths, all_rules

    findings = analyze_paths(["src/repro"])   # List[Finding]
"""

from .baseline import (
    BaselineDiff,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from .cfg import (
    Cfg,
    CfgBlock,
    ForwardAnalysis,
    build_cfg,
    function_cfgs,
    solve_forward,
)
from .core import (
    Finding,
    ModuleContext,
    Project,
    ProjectRule,
    Rule,
    SuppressionRecord,
    all_rules,
    analyze_paths,
    analyze_project,
    is_lock_expr,
    iter_python_files,
    register_rule,
    rules_by_code,
    terminal_name,
)
from .reporters import (
    render_human,
    render_json,
    render_rule_catalog,
    render_sarif,
    render_suppressions,
    write_report,
)

__all__ = [
    "BaselineDiff",
    "Cfg",
    "CfgBlock",
    "Finding",
    "ForwardAnalysis",
    "ModuleContext",
    "Project",
    "ProjectRule",
    "Rule",
    "SuppressionRecord",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "build_cfg",
    "diff_against_baseline",
    "function_cfgs",
    "is_lock_expr",
    "iter_python_files",
    "load_baseline",
    "register_rule",
    "render_human",
    "render_json",
    "render_rule_catalog",
    "render_sarif",
    "render_suppressions",
    "rules_by_code",
    "solve_forward",
    "terminal_name",
    "write_baseline",
    "write_report",
]
