"""Repo-specific static analysis: concurrency, determinism, and
engine-contract lints.

Run it as ``repro analyze <dir-or-files>`` (or
``python -m repro analyze src/repro``); exit status 1 means findings.
See ``docs/static-analysis.md`` for the rule catalog, the suppression
syntax, and how to add a rule.

Public API::

    from repro.analysis import analyze_paths, all_rules

    findings = analyze_paths(["src/repro"])   # List[Finding]
"""

from .core import (
    Finding,
    ModuleContext,
    Project,
    ProjectRule,
    Rule,
    all_rules,
    analyze_paths,
    analyze_project,
    is_lock_expr,
    iter_python_files,
    register_rule,
    rules_by_code,
    terminal_name,
)
from .reporters import (
    render_human,
    render_json,
    render_rule_catalog,
    write_report,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Project",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "is_lock_expr",
    "iter_python_files",
    "register_rule",
    "rules_by_code",
    "terminal_name",
    "render_human",
    "render_json",
    "render_rule_catalog",
    "write_report",
]
