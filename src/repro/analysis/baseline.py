"""Finding baselines: land new rules tree-wide without a flag day.

A baseline is a committed JSON file recording the findings the tree is
*known* to have.  ``repro analyze --baseline FILE`` then fails only on
findings **not** in the baseline, so a new rule can start enforcing on
every new change immediately while the backlog is burned down
incrementally.  ``--prune`` reports *stale* entries — baseline lines
the tree no longer produces — so the file shrinks monotonically
instead of fossilizing.

Entries are keyed by ``(code, path, message)`` with a count, NOT by
line number: adding an import shifts every line in the file, and a
line-keyed baseline would both mask new findings (a fresh finding
landing on a blessed line) and spuriously fail (a blessed finding
drifting off its line).  Message text is stable per-site because every
rule interpolates the offending names, not positions.  Paths are
normalized to ``/``-separated so the file is identical across
platforms.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .core import Finding

__all__ = [
    "BaselineDiff",
    "diff_against_baseline",
    "load_baseline",
    "write_baseline",
]

_FORMAT_VERSION = 1

_Key = Tuple[str, str, str]  # (code, normalized path, message)


def _key(code: str, path: str, message: str) -> _Key:
    return (code, path.replace(os.sep, "/"), message)


def _count(findings: List[Finding]) -> Dict[_Key, int]:
    counts: Dict[_Key, int] = {}
    for finding in findings:
        key = _key(finding.code, finding.path, finding.message)
        counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass
class BaselineDiff:
    """The comparison of current findings against a committed baseline."""

    #: Findings not covered by the baseline — these fail the run.
    new: List[Finding]
    #: Baseline entries the tree no longer produces, as
    #: ``(code, path, message, count)`` — surfaced by ``--prune``.
    stale: List[Tuple[str, str, str, int]]
    #: How many current findings the baseline absorbed.
    matched: int


def write_baseline(path: str, findings: List[Finding]) -> None:
    entries = [
        {"code": code, "path": norm_path, "message": message, "count": count}
        for (code, norm_path, message), count in sorted(
            _count(findings).items()
        )
    ]
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[_Key, int]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            "unsupported baseline version %r in %s (expected %d); "
            "regenerate with --write-baseline"
            % (version, path, _FORMAT_VERSION)
        )
    counts: Dict[_Key, int] = {}
    for entry in payload.get("entries", []):
        key = _key(entry["code"], entry["path"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def diff_against_baseline(
    findings: List[Finding], baseline: Dict[_Key, int]
) -> BaselineDiff:
    """Multiset difference: each baseline entry absorbs up to ``count``
    matching findings; the overflow is new, the unused remainder stale."""
    remaining = dict(baseline)
    new: List[Finding] = []
    matched = 0
    for finding in findings:
        key = _key(finding.code, finding.path, finding.message)
        left = remaining.get(key, 0)
        if left > 0:
            remaining[key] = left - 1
            matched += 1
        else:
            new.append(finding)
    stale = [
        (code, path, message, count)
        for (code, path, message), count in sorted(remaining.items())
        if count > 0
    ]
    return BaselineDiff(new=new, stale=stale, matched=matched)
