"""Per-function control-flow graphs and a generic forward dataflow solver.

This is the flow-sensitive layer under the lock-discipline
(:mod:`repro.analysis.lockgraph`), resource-lifecycle
(:mod:`repro.analysis.rules.lifecycle`) and dead-code
(:mod:`repro.analysis.rules.flow`) rules.  The model is deliberately
small and honest about its approximations:

* **One statement per basic block.**  Functions in this tree are short;
  statement-granular blocks keep exception edges precise (an exception
  *during* a statement carries the state from *before* it) and make the
  "every statement maps to exactly one block" property trivial to test.
* **Edges are labelled** (:data:`NEXT`, :data:`TRUE`/:data:`FALSE`,
  :data:`LOOP`, :data:`BREAK`/:data:`CONTINUE`, :data:`RETURN`,
  :data:`RAISE`, :data:`EXC`, :data:`EXC_CONT`).  ``EXC`` marks an
  *implicit* may-raise edge and is the only kind that propagates the
  block's **pre**-state; everything else propagates the post-state.
* **``finally`` and ``with`` are funnels, built once.**  Normal flow,
  exceptional flow and early exits (``return``/``break``/``continue``)
  all route through the ``finally`` body (or the synthetic ``with``-exit
  block, where context managers release), whose exit then fans out to
  each continuation actually used.  This joins states that a
  path-sensitive analysis would keep apart — the standard cheap
  approximation, conservative for the may-analyses built on top.
* **What may raise:** outside any ``try``/``with``, only statements
  containing a call; inside one, every statement except ``pass`` and
  bare jumps.  The generous inner rule keeps handlers reachable and
  exercises the release/cleanup paths that the lifecycle rules audit;
  the strict outer rule keeps the raise-exit from swallowing every
  straight-line function.

Raise paths end at a dedicated **raise-exit** block, distinct from the
normal exit, so clients can ask "is the lock still held if this function
unwinds?" separately from "…if it returns?".

The :func:`solve_forward` worklist solver is lattice-agnostic: an
analysis provides ``initial``/``join``/``transfer`` (and may override
``edge_state`` to refine what an exception edge carries, e.g. "the
release call itself raising still counts as released").
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import ModuleContext

__all__ = [
    "NEXT", "TRUE", "FALSE", "LOOP", "BREAK", "CONTINUE", "RETURN",
    "RAISE", "EXC", "EXC_CONT",
    "CfgBlock", "Cfg", "build_cfg", "function_cfgs", "iter_owned_stmts",
    "ForwardAnalysis", "solve_forward", "dotted_name", "may_raise",
]

NEXT = "next"
TRUE = "true"
FALSE = "false"
LOOP = "loop"
BREAK = "break"
CONTINUE = "continue"
RETURN = "return"
RAISE = "raise"
#: Implicit may-raise edge: carries the source block's PRE-state.
EXC = "exc"
#: Exception propagation continuing after a finally/with-exit ran.
EXC_CONT = "exc-cont"

#: Handler types treated as catch-alls (no unmatched-exception edge).
_CATCH_ALL = ("BaseException", "Exception")

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_NO_RAISE_SIMPLE = (
    ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal,
)

_TRY_TYPES = (ast.Try,) + (
    (ast.TryStar,) if hasattr(ast, "TryStar") else ()
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def may_raise(node: ast.AST, generous: bool = False) -> bool:
    """Whether executing ``node`` may raise.

    Strict mode: only if it contains a call.  Generous mode (inside a
    ``try``/``with`` region): anything but ``pass`` and bare jumps —
    handlers must stay reachable and cleanup paths must be exercised.
    """
    if isinstance(node, _NO_RAISE_SIMPLE):
        return False
    if generous:
        return True
    return any(isinstance(child, ast.Call) for child in ast.walk(node))


class CfgBlock:
    """One basic block: at most one anchored statement plus labelled edges."""

    __slots__ = ("bid", "stmt", "label", "succs", "preds", "with_exits")

    def __init__(
        self, bid: int, stmt: Optional[ast.stmt] = None, label: str = ""
    ) -> None:
        self.bid = bid
        self.stmt = stmt
        self.label = label
        self.succs: List[Tuple[int, str]] = []
        self.preds: List[Tuple[int, str]] = []
        #: ``with`` items whose ``__exit__`` runs at this (synthetic)
        #: block — transfer functions model releases here.
        self.with_exits: List[ast.withitem] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = self.label or (
            type(self.stmt).__name__ if self.stmt is not None else "join"
        )
        return "<block %d %s -> %r>" % (self.bid, what, self.succs)


class Cfg:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.blocks: List[CfgBlock] = []
        self.entry = -1
        self.exit = -1
        self.raise_exit = -1
        #: Every owned statement -> the id of its (unique) block.
        self.block_of: Dict[ast.stmt, int] = {}
        #: Statement -> its previous sibling in the same body, if any.
        self.prev_sibling: Dict[ast.stmt, ast.stmt] = {}
        self._reachable: Optional[Set[int]] = None

    def block(self, bid: int) -> CfgBlock:
        return self.blocks[bid]

    def reachable(self) -> Set[int]:
        """Block ids reachable from entry (memoized)."""
        if self._reachable is None:
            seen: Set[int] = set()
            stack = [self.entry]
            while stack:
                bid = stack.pop()
                if bid in seen:
                    continue
                seen.add(bid)
                for succ, _kind in self.blocks[bid].succs:
                    if succ not in seen:
                        stack.append(succ)
            self._reachable = seen
        return self._reachable

    def unreachable_stmts(self) -> List[ast.stmt]:
        """Owned statements whose block no path from entry reaches."""
        live = self.reachable()
        return [
            stmt
            for stmt, bid in sorted(
                self.block_of.items(), key=lambda item: item[1]
            )
            if bid not in live
        ]


def iter_owned_stmts(func: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``func`` itself — nested ``def``/``class``
    statements are yielded, their bodies are not (they own their own
    CFGs)."""

    def walk(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if isinstance(stmt, _FUNC_DEFS + (ast.ClassDef,)):
                continue
            for name in ("body", "orelse", "finalbody"):
                child = getattr(stmt, name, None)
                if child:
                    yield from walk(child)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from walk(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                yield from walk(case.body)

    yield from walk(func.body)


class _Frame:
    """A funnel region (``finally`` body or ``with``-exit block).

    ``conts`` records the early exits that entered the funnel as
    ``(kind, ultimate_target)`` pairs; after the funnel body is built its
    exit gets one edge per recorded continuation.  ``saw_exc`` arms the
    exceptional continuation to the next-outer exception target.
    """

    __slots__ = ("entry", "conts", "saw_exc")

    def __init__(self, entry: int) -> None:
        self.entry = entry
        self.conts: Set[Tuple[str, int]] = set()
        self.saw_exc = False


class _Loop:
    __slots__ = ("header", "after", "frame_depth")

    def __init__(self, header: int, after: int, frame_depth: int) -> None:
        self.header = header
        self.after = after
        self.frame_depth = frame_depth


_Edges = List[Tuple[int, str]]


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = Cfg(func)
        self.cfg.entry = self._block(label="entry").bid
        self.cfg.exit = self._block(label="exit").bid
        self.cfg.raise_exit = self._block(label="raise-exit").bid
        #: Innermost target for raising: a _Frame, or a plain block id.
        self.exc_stack: List[object] = []
        #: Funnels that early exits (return/break/continue) route through.
        self.frame_stack: List[_Frame] = []
        self.loop_stack: List[_Loop] = []

    # -- graph primitives ---------------------------------------------------

    def _block(
        self, stmt: Optional[ast.stmt] = None, label: str = ""
    ) -> CfgBlock:
        block = CfgBlock(len(self.cfg.blocks), stmt, label)
        self.cfg.blocks.append(block)
        if stmt is not None:
            self.cfg.block_of[stmt] = block.bid
        return block

    def _edge(self, src: int, dst: int, kind: str) -> None:
        self.cfg.blocks[src].succs.append((dst, kind))
        self.cfg.blocks[dst].preds.append((src, kind))

    def _connect(self, preds: _Edges, dst: int) -> None:
        for src, kind in preds:
            self._edge(src, dst, kind)

    def _exc_edge(self, src: int, kind: str) -> None:
        """Edge to the innermost exception target (frame or block)."""
        target = self.exc_stack[-1] if self.exc_stack else self.cfg.raise_exit
        if isinstance(target, _Frame):
            target.saw_exc = True
            self._edge(src, target.entry, kind)
        else:
            self._edge(src, int(target), kind)  # type: ignore[call-overload]

    def _route(self, src: int, kind: str, target: int, frame_floor: int) -> None:
        """Route an early exit, funnelling through the innermost open
        frame above ``frame_floor`` (finallys/with-exits must still run)."""
        frames = self.frame_stack[frame_floor:]
        if frames:
            frame = frames[-1]
            frame.conts.add((kind, target))
            self._edge(src, frame.entry, kind)
        else:
            self._edge(src, target, kind)

    def _generous(self) -> bool:
        return bool(self.exc_stack)

    # -- construction -------------------------------------------------------

    def build(self) -> Cfg:
        dangling = self._build_body(
            self.cfg.func.body, [(self.cfg.entry, NEXT)]
        )
        self._connect(dangling, self.cfg.exit)
        return self.cfg

    def _build_body(self, body: List[ast.stmt], preds: _Edges) -> _Edges:
        prev: Optional[ast.stmt] = None
        for stmt in body:
            if prev is not None:
                self.cfg.prev_sibling[stmt] = prev
            prev = stmt
            preds = self._build_stmt(stmt, preds)
        return preds

    def _build_stmt(self, stmt: ast.stmt, preds: _Edges) -> _Edges:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds)
        if isinstance(stmt, _TRY_TYPES):
            return self._build_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, preds)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._build_match(stmt, preds)
        return self._build_simple(stmt, preds)

    def _build_simple(self, stmt: ast.stmt, preds: _Edges) -> _Edges:
        block = self._block(stmt)
        self._connect(preds, block.bid)
        bid = block.bid
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and may_raise(
                stmt.value, self._generous()
            ):
                self._exc_edge(bid, EXC)
            self._route(bid, RETURN, self.cfg.exit, frame_floor=0)
            return []
        if isinstance(stmt, ast.Raise):
            self._exc_edge(bid, RAISE)
            return []
        if isinstance(stmt, ast.Break):
            loop = self.loop_stack[-1]
            self._route(bid, BREAK, loop.after, loop.frame_depth)
            return []
        if isinstance(stmt, ast.Continue):
            loop = self.loop_stack[-1]
            self._route(bid, CONTINUE, loop.header, loop.frame_depth)
            return []
        if may_raise(stmt, self._generous()):
            self._exc_edge(bid, EXC)
        return [(bid, NEXT)]

    def _build_if(self, stmt: ast.If, preds: _Edges) -> _Edges:
        header = self._block(stmt)
        self._connect(preds, header.bid)
        if may_raise(stmt.test, self._generous()):
            self._exc_edge(header.bid, EXC)
        dangling = self._build_body(stmt.body, [(header.bid, TRUE)])
        if stmt.orelse:
            dangling += self._build_body(stmt.orelse, [(header.bid, FALSE)])
        else:
            dangling.append((header.bid, FALSE))
        return dangling

    def _build_loop(self, stmt: ast.stmt, preds: _Edges) -> _Edges:
        header = self._block(stmt)
        self._connect(preds, header.bid)
        test = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
        if may_raise(test, self._generous()):
            self._exc_edge(header.bid, EXC)
        after = self._block(label="loop-after")
        self.loop_stack.append(
            _Loop(header.bid, after.bid, len(self.frame_stack))
        )
        body_out = self._build_body(stmt.body, [(header.bid, TRUE)])
        self.loop_stack.pop()
        self._connect([(bid, LOOP) for bid, _ in body_out], header.bid)
        if stmt.orelse:
            else_out = self._build_body(stmt.orelse, [(header.bid, FALSE)])
            self._connect(else_out, after.bid)
        else:
            self._edge(header.bid, after.bid, FALSE)
        return [(after.bid, NEXT)]

    def _build_with(self, stmt: ast.stmt, preds: _Edges) -> _Edges:
        header = self._block(stmt)
        self._connect(preds, header.bid)
        if any(
            may_raise(item.context_expr, self._generous())
            for item in stmt.items
        ):
            self._exc_edge(header.bid, EXC)
        exit_block = self._block(label="with-exit")
        exit_block.with_exits = list(stmt.items)
        frame = _Frame(exit_block.bid)
        self.exc_stack.append(frame)
        self.frame_stack.append(frame)
        body_out = self._build_body(stmt.body, [(header.bid, NEXT)])
        self.frame_stack.pop()
        self.exc_stack.pop()
        self._connect(body_out, exit_block.bid)
        return self._drain_frame(frame, exit_ends=[(exit_block.bid, NEXT)],
                                 has_normal=bool(body_out))

    def _build_try(self, stmt: ast.stmt, preds: _Edges) -> _Edges:
        header = self._block(stmt)
        self._connect(preds, header.bid)
        fin_frame: Optional[_Frame] = None
        if stmt.finalbody:
            fin_entry = self._block(label="finally")
            fin_frame = _Frame(fin_entry.bid)

        handlers = list(stmt.handlers)
        dispatch: Optional[CfgBlock] = None
        if handlers:
            dispatch = self._block(label="except-dispatch")

        # The try body raises to the dispatch (handlers first) or
        # straight into the finally funnel.
        body_exc_target: object
        if dispatch is not None:
            body_exc_target = dispatch.bid
        elif fin_frame is not None:
            body_exc_target = fin_frame
        else:
            body_exc_target = (
                self.exc_stack[-1] if self.exc_stack else self.cfg.raise_exit
            )
        self.exc_stack.append(body_exc_target)
        if fin_frame is not None:
            self.frame_stack.append(fin_frame)
        body_out = self._build_body(stmt.body, [(header.bid, NEXT)])
        self.exc_stack.pop()

        # else runs only after a clean body; its exceptions skip the
        # handlers but still pass through the finally.
        if stmt.orelse:
            if fin_frame is not None:
                self.exc_stack.append(fin_frame)
            body_out = self._build_body(stmt.orelse, body_out)
            if fin_frame is not None:
                self.exc_stack.pop()

        normal_out = list(body_out)
        if dispatch is not None:
            caught_all = False
            if fin_frame is not None:
                self.exc_stack.append(fin_frame)
            for handler in handlers:
                handler_out = self._build_body(
                    handler.body, [(dispatch.bid, EXC)]
                )
                normal_out += handler_out
                if handler.type is None or (
                    dotted_name(handler.type) or ""
                ).split(".")[-1] in _CATCH_ALL:
                    caught_all = True
            if fin_frame is not None:
                self.exc_stack.pop()
            if not caught_all:
                # Unmatched exception: keeps propagating.
                if fin_frame is not None:
                    fin_frame.saw_exc = True
                    self._edge(dispatch.bid, fin_frame.entry, EXC)
                else:
                    self._exc_edge(dispatch.bid, EXC)
            if not dispatch.preds:
                # Nothing in the body can raise; keep the handlers
                # formally reachable rather than reporting them dead.
                self._edge(header.bid, dispatch.bid, EXC)

        if fin_frame is None:
            return normal_out

        self.frame_stack.pop()
        self._connect(normal_out, fin_frame.entry)
        fin_out = self._build_body(
            stmt.finalbody, [(fin_frame.entry, NEXT)]
        )
        return self._drain_frame(
            fin_frame, exit_ends=fin_out, has_normal=bool(normal_out)
        )

    def _drain_frame(
        self, frame: _Frame, exit_ends: _Edges, has_normal: bool
    ) -> _Edges:
        """Wire a funnel's exit to every continuation that entered it."""
        for kind, target in sorted(frame.conts):
            for bid, _ in exit_ends:
                self._edge(bid, target, kind)
        if frame.saw_exc:
            for bid, _ in exit_ends:
                self._exc_edge(bid, EXC_CONT)
        return exit_ends if has_normal else []

    def _build_match(self, stmt: ast.stmt, preds: _Edges) -> _Edges:
        header = self._block(stmt)
        self._connect(preds, header.bid)
        if may_raise(stmt.subject, self._generous()):
            self._exc_edge(header.bid, EXC)
        dangling: _Edges = []
        for case in stmt.cases:
            dangling += self._build_body(case.body, [(header.bid, TRUE)])
        dangling.append((header.bid, FALSE))
        return dangling


def build_cfg(func: ast.AST) -> Cfg:
    """The CFG of one ``FunctionDef``/``AsyncFunctionDef``."""
    return _Builder(func).build()


def function_cfgs(module: ModuleContext, func: ast.AST) -> Cfg:
    """``build_cfg`` memoized on the module, shared across every rule.

    All flow-sensitive rules (RC104/RC105, RL5xx, RE305, RD205) visit
    the same functions; building each CFG once per analyzer run is what
    keeps the whole-tree pass fast.
    """
    cache: Dict[int, Cfg] = module.__dict__.setdefault("_cfg_cache", {})
    cfg = cache.get(id(func))
    if cfg is None:
        cfg = build_cfg(func)
        cache[id(func)] = cfg
    return cfg


class ForwardAnalysis:
    """A forward dataflow problem over a :class:`Cfg`.

    Subclasses define the lattice (``initial``/``join``) and the
    ``transfer`` function; ``edge_state`` may be overridden to refine
    what each edge kind propagates (the default: :data:`EXC` edges carry
    the pre-state — the exception happened *during* the statement — and
    every other kind carries the post-state).
    """

    def initial(self) -> object:
        raise NotImplementedError

    def join(self, a: object, b: object) -> object:
        raise NotImplementedError

    def transfer(self, block: CfgBlock, state: object) -> object:
        raise NotImplementedError

    def edge_state(
        self, block: CfgBlock, kind: str, state_in: object, state_out: object
    ) -> object:
        return state_in if kind == EXC else state_out


def solve_forward(
    cfg: Cfg, analysis: ForwardAnalysis
) -> Tuple[Dict[int, object], Dict[int, object]]:
    """Worklist fixpoint; returns ``(in_states, out_states)`` by block id.

    Blocks never reached by any edge are absent from the result maps —
    callers should treat a missing entry as bottom.
    """
    in_states: Dict[int, object] = {cfg.entry: analysis.initial()}
    out_states: Dict[int, object] = {}
    work = [cfg.entry]
    while work:
        bid = work.pop()
        block = cfg.blocks[bid]
        state_in = in_states[bid]
        state_out = analysis.transfer(block, state_in)
        out_states[bid] = state_out
        for succ, kind in block.succs:
            carried = analysis.edge_state(block, kind, state_in, state_out)
            known = in_states.get(succ)
            merged = carried if known is None else analysis.join(known, carried)
            if known is None or merged != known:
                in_states[succ] = merged
                work.append(succ)
    return in_states, out_states
