"""Lock-held dataflow and the project-wide lock-acquisition-order graph.

Built on :mod:`repro.analysis.cfg`.  A small forward analysis computes,
per basic block, the *may-held* set of lock identities (union join over
paths), counting both ``with lock:`` regions and explicit
``lock.acquire()`` / ``lock.release()`` calls.  Lock syntax is
recognized by the shared :data:`repro.analysis.core.LOCK_NAME_RE`
convention; identities are normalized so the same lock is the same node
across modules:

* ``self._lock`` inside ``class Registry`` → ``Registry._lock``
* anything else → the terminal identifier (``CACHE_LOCK``,
  ``write_lock``), which is how a module-level lock imported elsewhere
  keeps a single node.

Two rules consume the analysis:

* **RC104 (project rule)** — every acquisition performed while another
  lock is already held contributes a *held → acquired* edge; a cycle in
  the resulting cross-module graph is a deadlock-capable acquisition
  order.  One finding per strongly connected component, anchored at its
  first witness site.
* **RC105 (module rule)** — a lock acquired via ``acquire()`` that may
  still be held when the function unwinds (raise exit) or returns
  (normal exit) on *some* path, i.e. release is not guaranteed by a
  ``finally``/``with``.  ``__enter__`` and ``*acquire*``-named
  functions are exempt: holding the lock past the return is their job.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .cfg import EXC, CfgBlock, ForwardAnalysis, function_cfgs, solve_forward
from .core import (
    Finding,
    FunctionInfo,
    ModuleContext,
    Project,
    ProjectRule,
    Rule,
    is_lock_expr,
    iter_functions,
    register_rule,
    terminal_name,
)

__all__ = [
    "LockHeldAnalysis",
    "LockSite",
    "lock_identity",
    "LockOrderCycleRule",
    "ReleaseNotGuaranteedRule",
]

_WITH_TYPES = (ast.With, ast.AsyncWith)


def lock_identity(expr: ast.AST, class_name: Optional[str]) -> Optional[str]:
    """A cross-module-stable name for the lock ``expr`` denotes."""
    if not is_lock_expr(expr):
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and class_name
    ):
        return "%s.%s" % (class_name, expr.attr)
    return terminal_name(expr)


def _call_on_lock(stmt: ast.stmt, method: str) -> Optional[ast.expr]:
    """The lock expression of a ``lock.<method>(...)`` statement."""
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == method
        and is_lock_expr(func.value)
    ):
        return func.value
    return None


class LockHeldAnalysis(ForwardAnalysis):
    """May-held lock sets (frozensets of identities, union join)."""

    def __init__(self, class_name: Optional[str]) -> None:
        self.class_name = class_name

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: object, b: object) -> FrozenSet[str]:
        return frozenset(a) | frozenset(b)  # type: ignore[arg-type]

    def acquires(self, block: CfgBlock) -> Set[str]:
        out: Set[str] = set()
        stmt = block.stmt
        if isinstance(stmt, _WITH_TYPES):
            for item in stmt.items:
                ident = lock_identity(item.context_expr, self.class_name)
                if ident:
                    out.add(ident)
        elif stmt is not None:
            expr = _call_on_lock(stmt, "acquire")
            if expr is not None:
                ident = lock_identity(expr, self.class_name)
                if ident:
                    out.add(ident)
        return out

    def releases(self, block: CfgBlock) -> Set[str]:
        out: Set[str] = set()
        for item in block.with_exits:
            ident = lock_identity(item.context_expr, self.class_name)
            if ident:
                out.add(ident)
        stmt = block.stmt
        if stmt is not None:
            expr = _call_on_lock(stmt, "release")
            if expr is not None:
                ident = lock_identity(expr, self.class_name)
                if ident:
                    out.add(ident)
        return out

    def transfer(self, block: CfgBlock, state: object) -> FrozenSet[str]:
        held = frozenset(state)  # type: ignore[arg-type]
        return (held - frozenset(self.releases(block))) | frozenset(
            self.acquires(block)
        )

    def edge_state(
        self, block: CfgBlock, kind: str, state_in: object, state_out: object
    ) -> object:
        # An exception *during* the statement: acquisitions did not
        # happen, but a release call raising still counts as an attempt
        # on an already-releasable path — without this, the release in
        # a ``finally`` would itself keep the lock "held" into the
        # raise exit.
        if kind == EXC:
            return frozenset(state_in) - frozenset(  # type: ignore[arg-type]
                self.releases(block)
            )
        return state_out


class LockSite:
    """One acquisition performed while other locks were held."""

    __slots__ = ("held", "acquired", "path", "line", "col")

    def __init__(
        self, held: str, acquired: str, path: str, line: int, col: int
    ) -> None:
        self.held = held
        self.acquired = acquired
        self.path = path
        self.line = line
        self.col = col


def _function_lock_sites(
    module: ModuleContext, info: FunctionInfo
) -> Iterator[LockSite]:
    cfg = function_cfgs(module, info.node)
    analysis = LockHeldAnalysis(info.class_name)
    in_states, _ = solve_forward(cfg, analysis)
    for block in cfg.blocks:
        acquired = analysis.acquires(block)
        if not acquired:
            continue
        held_state = in_states.get(block.bid)
        if not held_state:
            continue
        assert block.stmt is not None
        for acq in sorted(acquired):
            for held in sorted(frozenset(held_state)):  # type: ignore[arg-type]
                if held != acq:
                    yield LockSite(
                        held,
                        acq,
                        module.path,
                        block.stmt.lineno,
                        block.stmt.col_offset,
                    )


def _strongly_connected(
    nodes: Iterable[str], succs: Dict[str, Set[str]]
) -> List[List[str]]:
    """Tarjan's SCC (iterative), components in discovery order."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(succs.get(root, ()))))
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(succs.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

    for node in sorted(nodes):
        if node not in index:
            visit(node)
    return components


@register_rule
class LockOrderCycleRule(ProjectRule):
    """RC104: a cycle in the cross-module lock-acquisition-order graph."""

    code = "RC104"
    name = "lock-order-cycle"
    description = (
        "Two (or more) locks are acquired in opposite orders on "
        "different paths — a deadlock waiting for the right "
        "interleaving.  Edges come from a flow-sensitive held-set "
        "analysis over every function; identities are normalized "
        "(self.x -> Class.x, otherwise the terminal name) so the graph "
        "spans modules.  Fix by picking one global order, or by "
        "narrowing one critical section so the locks never overlap."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        # First witness per edge, in deterministic module/line order.
        witnesses: Dict[Tuple[str, str], LockSite] = {}
        for module in project.modules:
            for info in iter_functions(module.tree):
                for site in _function_lock_sites(module, info):
                    witnesses.setdefault((site.held, site.acquired), site)

        succs: Dict[str, Set[str]] = {}
        nodes: Set[str] = set()
        for held, acquired in witnesses:
            succs.setdefault(held, set()).add(acquired)
            nodes.add(held)
            nodes.add(acquired)

        findings = []
        for component in _strongly_connected(nodes, succs):
            if len(component) < 2:
                continue
            members = set(component)
            cycle_sites = sorted(
                (
                    site
                    for (held, acq), site in witnesses.items()
                    if held in members and acq in members
                ),
                key=lambda s: (s.path, s.line, s.held, s.acquired),
            )
            anchor = cycle_sites[0]
            order = ", ".join(sorted(members))
            detail = "; ".join(
                "%s->%s at %s:%d" % (s.held, s.acquired, s.path, s.line)
                for s in cycle_sites
            )
            findings.append(
                Finding(
                    code=self.code,
                    path=anchor.path,
                    line=anchor.line,
                    col=anchor.col,
                    message=(
                        "lock-order cycle among {%s}: %s — acquisitions "
                        "in opposite orders can deadlock" % (order, detail)
                    ),
                )
            )
        return findings


@register_rule
class ReleaseNotGuaranteedRule(Rule):
    """RC105: ``acquire()`` whose release is not guaranteed on all paths."""

    code = "RC105"
    name = "release-not-guaranteed"
    description = (
        "A lock acquired with .acquire() may still be held when the "
        "function raises or returns: some path (including implicit "
        "exception edges out of any statement that can raise) skips the "
        "release.  Use 'with lock:' or a try/finally; __enter__ and "
        "*acquire*-named helpers, whose contract is to return holding "
        "the lock, are exempt."
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for info in iter_functions(module.tree):
            name = getattr(info.node, "name", "")
            if name == "__enter__" or "acquire" in name:
                continue
            yield from self._check_function(module, info)

    def _check_function(
        self, module: ModuleContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        cfg = function_cfgs(module, info.node)
        analysis = LockHeldAnalysis(info.class_name)

        # Explicit acquire() sites only: with-blocks release by
        # construction, so they cannot leak.
        acquire_sites: Dict[str, ast.stmt] = {}
        for block in cfg.blocks:
            stmt = block.stmt
            if stmt is None or isinstance(stmt, _WITH_TYPES):
                continue
            expr = _call_on_lock(stmt, "acquire")
            if expr is None:
                continue
            ident = lock_identity(expr, info.class_name)
            if ident:
                acquire_sites.setdefault(ident, stmt)
        if not acquire_sites:
            return

        in_states, _ = solve_forward(cfg, analysis)
        leaks: Dict[str, str] = {}
        for exit_bid, how in (
            (cfg.raise_exit, "when the function raises"),
            (cfg.exit, "on a return path"),
        ):
            state = in_states.get(exit_bid)
            if not state:
                continue
            for ident in sorted(frozenset(state)):  # type: ignore[arg-type]
                if ident in acquire_sites:
                    leaks.setdefault(ident, how)
        for ident, how in sorted(leaks.items()):
            stmt = acquire_sites[ident]
            yield Finding(
                code=self.code,
                path=module.path,
                line=stmt.lineno,
                col=stmt.col_offset,
                message=(
                    "lock '%s' acquired here may still be held %s — "
                    "release is not guaranteed by a finally/with"
                    % (ident, how)
                ),
            )
