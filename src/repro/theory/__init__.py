"""Theory solvers: difference-bound conjunctions and congruence closure."""

from .congruence import CongruenceClosure
from .difference import DifferenceResult, DifferenceSolver, check_bounds

__all__ = [
    "CongruenceClosure",
    "DifferenceResult",
    "DifferenceSolver",
    "check_bounds",
]
