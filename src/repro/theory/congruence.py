"""Congruence closure for conjunctions of EUF (in)equalities.

This is the classic Nelson–Oppen/Downey–Sethi–Tarjan union–find procedure
SVC- and CVC-class tools use as their equality core: given asserted
equalities between terms (with uninterpreted function applications) it
computes the closure under congruence (``a = b  =>  f(a) = f(b)``) and
checks the asserted disequalities against it.

The eager pipeline never needs this (function applications are compiled
away before encoding), but the repository ships it as the theory substrate
for the baseline solvers' lineage and as an independent oracle for testing
the function-elimination pass on conjunctive EUF problems.

Offsets are handled by treating ``t + k`` as an uninterpreted wrapper
``offset_k(t)`` — sound for pure-equality reasoning (it preserves
``a = b => a + k = b + k``) but *not* for ordering; callers that need
ordering must use :mod:`repro.theory.difference`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.terms import FuncApp, Ite, Offset, Term, Var

__all__ = ["CongruenceClosure"]


class CongruenceClosure:
    """Incremental congruence closure over SUF terms (no ITEs).

    Terms are registered on first use; :meth:`merge` asserts an equality,
    :meth:`assert_diseq` a disequality.  :meth:`consistent` reports whether
    any asserted disequality has been merged.  Uses union–find with
    congruence propagation via a use-list worklist.
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._uses: Dict[Term, List[Tuple]] = {}
        self._signatures: Dict[Tuple, Term] = {}
        self._diseqs: List[Tuple[Term, Term]] = []

    # -- term registration ----------------------------------------------------

    def add_term(self, term: Term) -> None:
        if term in self._parent:
            return
        if isinstance(term, Ite):
            raise ValueError(
                "congruence closure handles ITE-free terms; expand ITEs "
                "first"
            )
        self._parent[term] = term
        self._uses[term] = []
        if isinstance(term, FuncApp):
            for arg in term.args:
                self.add_term(arg)
            self._register_use(term)
        elif isinstance(term, Offset):
            self.add_term(term.base)
            self._register_use(term)
        elif not isinstance(term, Var):
            raise TypeError("unsupported term kind: %r" % (type(term),))

    def _signature(self, term: Term) -> Tuple:
        if isinstance(term, FuncApp):
            return (term.symbol,) + tuple(self.find(a) for a in term.args)
        if isinstance(term, Offset):
            return ("$offset", term.k, self.find(term.base))
        raise TypeError("leaf terms have no signature")

    def _register_use(self, term: Term) -> None:
        children = (
            term.args if isinstance(term, FuncApp) else (term.base,)
        )
        for child in children:
            self._uses[self.find(child)].append(term)
        sig = self._signature(term)
        existing = self._signatures.get(sig)
        if existing is not None and self.find(existing) != self.find(term):
            self._union(existing, term)
        else:
            self._signatures[sig] = term

    # -- union-find -----------------------------------------------------------

    def find(self, term: Term) -> Term:
        self.add_term(term)
        root = term
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[term] != root:
            parent[term], term = root, parent[term]
        return root

    def _union(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        # Merge the smaller use list into the larger.
        if len(self._uses[ra]) < len(self._uses[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        pending = self._uses[rb]
        self._uses[rb] = []
        self._uses[ra].extend(pending)
        # Re-examine signatures of parents of the merged class.
        for use in pending:
            sig = self._signature(use)
            existing = self._signatures.get(sig)
            if existing is None:
                self._signatures[sig] = use
            elif self.find(existing) != self.find(use):
                self._union(existing, use)

    # -- public assertions ------------------------------------------------------

    def merge(self, a: Term, b: Term) -> None:
        """Assert ``a = b``."""
        self.add_term(a)
        self.add_term(b)
        self._union(a, b)

    def assert_diseq(self, a: Term, b: Term) -> None:
        """Assert ``a != b``."""
        self.add_term(a)
        self.add_term(b)
        self._diseqs.append((a, b))

    def equal(self, a: Term, b: Term) -> bool:
        """Are ``a`` and ``b`` known equal under the asserted equalities?"""
        return self.find(a) == self.find(b)

    def consistent(self) -> bool:
        """No asserted disequality is forced equal."""
        return all(self.find(a) != self.find(b) for a, b in self._diseqs)

    def first_conflict(self) -> Optional[Tuple[Term, Term]]:
        for a, b in self._diseqs:
            if self.find(a) == self.find(b):
                return (a, b)
        return None
