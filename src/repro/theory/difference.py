"""Conjunctions of difference bounds: consistency, models, explanations.

A *difference bound* is ``x - y <= c`` over the integers.  A conjunction of
bounds is consistent iff the constraint graph (edge ``y -> x`` with weight
``c`` per bound) has no negative-weight cycle; a satisfying assignment is
read off Bellman–Ford potentials, and an inconsistency is *explained* by
the bounds on a negative cycle.

This is the theory core that

* decodes integer counterexamples from EIJ SAT models,
* drives the lazy (CVC-style) procedure's refinement loop, where the
  negative-cycle explanation becomes a conflict clause, and
* serves as the SVC-style solver's fast conjunction decision (the paper:
  "deciding a conjunction of separation predicates can be reduced to a
  shortest-path problem").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..encodings.sepvars import Bound
from ..logic.terms import Var

__all__ = ["DifferenceResult", "check_bounds", "DifferenceSolver"]


@dataclass
class DifferenceResult:
    """Outcome of a consistency check.

    ``model`` is present iff consistent; ``cycle`` (a minimal inconsistent
    subset of the input bounds, forming a negative cycle) iff inconsistent.
    """

    consistent: bool
    model: Optional[Dict[Var, int]] = None
    cycle: Optional[List[Bound]] = None


def check_bounds(bounds: Sequence[Bound]) -> DifferenceResult:
    """Bellman–Ford consistency check over a set of difference bounds."""
    nodes: List[Var] = []
    index: Dict[Var, int] = {}
    for bound in bounds:
        for var in (bound.lhs, bound.rhs):
            if var not in index:
                index[var] = len(nodes)
                nodes.append(var)
    n = len(nodes)
    if n == 0:
        return DifferenceResult(consistent=True, model={})

    # Edge per bound x - y <= c: from y to x, weight c.
    edges: List[Tuple[int, int, int, Bound]] = [
        (index[b.rhs], index[b.lhs], b.c, b) for b in bounds
    ]

    # Virtual source = distance 0 to every node (implicit: start dist 0).
    dist = [0] * n
    pred: List[Optional[Tuple[int, Bound]]] = [None] * n

    updated_node = -1
    for _ in range(n):
        updated_node = -1
        for u, v, w, bound in edges:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                pred[v] = (u, bound)
                updated_node = v
        if updated_node == -1:
            break

    if updated_node == -1:
        model = {nodes[i]: dist[i] for i in range(n)}
        return DifferenceResult(consistent=True, model=model)

    # A relaxation succeeded on the n-th pass: walk predecessors to land
    # inside the negative cycle, then collect its bounds.
    node = updated_node
    for _ in range(n):
        node = pred[node][0]
    cycle: List[Bound] = []
    start = node
    while True:
        prev, bound = pred[node]
        cycle.append(bound)
        node = prev
        if node == start:
            break
    cycle.reverse()
    return DifferenceResult(consistent=False, cycle=cycle)


class DifferenceSolver:
    """A stack-based wrapper for case-splitting search (SVC-style).

    ``push``/``pop`` maintain an assertion stack; :meth:`check` runs the
    Bellman–Ford test over the current assertions.  (The check is not
    incremental — each call is O(V·E) — which faithfully keeps the
    conjunctive case cheap and the disjunctive case expensive, the paper's
    observed SVC behaviour.)
    """

    def __init__(self) -> None:
        self._stack: List[List[Bound]] = [[]]

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise IndexError("pop on empty assertion stack")
        self._stack.pop()

    def assert_bound(self, bound: Bound) -> None:
        self._stack[-1].append(bound)

    def assert_bounds(self, bounds: Iterable[Bound]) -> None:
        self._stack[-1].extend(bounds)

    def assertions(self) -> List[Bound]:
        return [b for frame in self._stack for b in frame]

    def check(self) -> DifferenceResult:
        return check_bounds(self.assertions())
