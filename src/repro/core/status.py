"""The shared status vocabulary for every decision procedure.

:class:`Status` replaces the stringly-typed constants that used to live
on :class:`~repro.core.result.DecisionResult`.  It subclasses :class:`str`
so every existing comparison (``result.status == "VALID"``, dict keys,
``"%s" % status``, JSON serialization) keeps working unchanged.
"""

from __future__ import annotations

import enum

__all__ = ["Status", "DECIDED_STATUSES"]


class Status(str, enum.Enum):
    """Outcome of one validity check, shared by all engines.

    ``VALID`` / ``INVALID`` are *decided* verdicts; everything else means
    the procedure gave up (resource limit, translation blow-up, or a
    crashed portfolio member).
    """

    VALID = "VALID"
    INVALID = "INVALID"
    UNKNOWN = "UNKNOWN"
    TRANSLATION_LIMIT = "TRANSLATION_LIMIT"
    ERROR = "ERROR"

    # Keep plain-string formatting: "%s" % Status.VALID == "VALID" (the
    # enum mixin would otherwise print "Status.VALID" on some versions).
    __str__ = str.__str__
    __format__ = str.__format__

    @property
    def decided(self) -> bool:
        """True for the two definitive verdicts."""
        return self in DECIDED_STATUSES

    @property
    def as_valid(self) -> "bool | None":
        """``True``/``False`` when decided, ``None`` otherwise."""
        if self is Status.VALID:
            return True
        if self is Status.INVALID:
            return False
        return None


DECIDED_STATUSES = frozenset((Status.VALID, Status.INVALID))
