"""The top-level eager decision procedure for SUF validity.

Pipeline (paper §2.1):

1. eliminate uninterpreted function/predicate applications (nested ITEs,
   positive-equality bookkeeping) — ``F_suf -> F_sep``;
2. encode ``F_sep`` propositionally with the selected method
   (``"sd"``, ``"eij"`` or ``"hybrid"``) — ``F_sep -> F_bool``;
3. Tseitin-flatten ``F_trans ∧ ¬F_bvar`` and run the CDCL solver;
4. UNSAT means the input is **valid**; a model is decoded back into an
   integer counterexample (bit-vectors read off directly, difference
   bounds completed by Bellman–Ford, maximal-diversity values for ``V_p``)
   and lifted to function tables.

:func:`check_validity` is the main public entry point of the library.
The pipeline itself lives in :mod:`repro.engine.stages` (each stage
individually timed and counted); this module keeps the historical API
plus the model-decoding helpers shared by the lazy and SVC baselines.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..encodings.bitvector import bv_value
from ..encodings.hybrid import DEFAULT_SEP_THOLD, Encoding
from ..logic.semantics import Interpretation, evaluate_term
from ..logic.terms import BoolVar, Formula
from ..logic.traversal import (
    collect_bool_vars,
    collect_vars,
    max_offset_magnitude,
)
from ..separation.unionfind import DisjointSet
from ..theory.difference import check_bounds
from ..transform.func_elim import FuncElimInfo
from .result import DecisionResult

__all__ = ["check_validity", "decode_countermodel", "lift_countermodel"]

METHODS = ("sd", "eij", "hybrid", "static")


def check_validity(
    formula: Formula,
    method: str = "hybrid",
    sep_thold: int = DEFAULT_SEP_THOLD,
    trans_budget: Optional[int] = None,
    sat_time_limit: Optional[float] = None,
    sat_conflict_limit: Optional[int] = None,
    want_countermodel: bool = True,
    sd_ranges: str = "uniform",
) -> DecisionResult:
    """Decide whether a SUF formula is valid.

    Parameters
    ----------
    formula:
        The SUF formula (see :mod:`repro.logic.builders`).
    method:
        ``"hybrid"`` (the paper's contribution), ``"sd"`` or ``"eij"``.
    sep_thold:
        HYBRID's ``SEP_THOLD`` (ignored by the other methods).
    trans_budget:
        Optional cap on transitivity clauses for EIJ-encoded classes; when
        exceeded, the result status is ``TRANSLATION_LIMIT`` (this is how
        the experiments model the paper's EIJ translation-stage timeouts).
    sat_time_limit / sat_conflict_limit:
        Resource limits for the SAT search (status ``UNKNOWN`` when hit).
    sd_ranges:
        ``"uniform"`` uses the paper's per-class window for SD domains;
        ``"ascending"`` applies the tighter Pnueli-et-al. allocation to
        equality-only classes (only affects the ``sd`` method).
    """
    if method not in METHODS:
        raise ValueError("unknown method %r; expected one of %r" % (method, METHODS))

    # Deferred import: repro.engine builds on this module (it reuses the
    # decoding helpers below), so the dependency must not be circular at
    # import time.
    from ..engine.contract import SolveRequest
    from ..engine.stages import run_eager

    outcome = run_eager(
        SolveRequest(
            formula=formula,
            sep_thold=sep_thold,
            trans_budget=trans_budget,
            time_limit=sat_time_limit,
            conflict_limit=sat_conflict_limit,
            want_countermodel=want_countermodel,
            sd_ranges=sd_ranges,
        ),
        method=method,
    )
    return outcome.to_decision_result()


def decode_countermodel(
    encoding: Encoding, boolvar_model: Dict[BoolVar, bool]
) -> Interpretation:
    """Turn a Boolean model of ``F_trans ∧ ¬F_bvar`` into integers.

    * SD-encoded constants: read their bit-vectors.
    * EIJ-encoded classes: the asserted difference bounds are consistent
      (``F_trans`` holds), so Bellman–Ford yields values.
    * ``V_p`` constants: fresh maximally diverse values, spaced far apart
      and far above everything general.
    * user-level symbolic Boolean constants: copied from the model.
    """
    analysis = encoding.analysis
    values: Dict[str, int] = {}

    # SD classes: direct bit readout.
    for var, bits in encoding.var_bits.items():
        values[var.name] = bv_value(bits, boolvar_model)

    # EIJ classes with bounds: complete the asserted bounds per class.
    # Equality-only classes instead partition by the true equality
    # variables and give each group a distinct value.
    eij_classes = [
        vclass
        for vclass in analysis.classes
        if encoding.method_of_class[vclass.index] == "EIJ"
    ]
    bound_vars = set()
    for vclass in eij_classes:
        if (
            vclass.has_inequality
            or vclass.has_offset
            or not encoding.uses_eq_vars
        ):
            bound_vars.update(vclass.vars)
        else:
            _decode_equality_class(
                vclass, encoding.registry, boolvar_model, values
            )
    if bound_vars:
        bounds = [
            b
            for b in encoding.registry.asserted_bounds(boolvar_model)
            if b.lhs in bound_vars and b.rhs in bound_vars
        ]
        result = check_bounds(bounds)
        if not result.consistent:
            raise AssertionError(
                "F_trans held but bounds are inconsistent — transitivity "
                "generation is incomplete"
            )
        for var in bound_vars:
            values[var.name] = result.model.get(var, 0) if result.model else 0

    # V_p constants: maximal diversity, far from all general values.  The
    # spacing must exceed every offset in the formula (including offsets in
    # pure-V_p atoms, which no class records), so it derives from the whole
    # pushed formula.
    span = max_offset_magnitude(analysis.pushed)
    floor = max(values.values(), default=0) + 10 * (span + 1) + 1
    step = 2 * span + 2
    for i, pvar in enumerate(sorted(analysis.p_vars, key=lambda v: v.name)):
        values[pvar.name] = floor + i * step

    # Any remaining constants (never compared in an atom): zero.
    for var in collect_vars(analysis.original):
        values.setdefault(var.name, 0)

    bools = {
        bv.name: boolvar_model.get(bv, False)
        for bv in collect_bool_vars(analysis.original)
    }
    return Interpretation(vars=values, bools=bools)


def _decode_equality_class(
    vclass: Any,
    registry: Any,
    boolvar_model: Dict[BoolVar, bool],
    values: Dict[str, int],
) -> None:
    """Assign values to an equality-only class from its eq-var assignment.

    True equality variables merge constants; each resulting group gets a
    distinct value (F_trans guarantees the merge respects the false
    variables, so groups really are separable)."""
    members = set(vclass.vars)
    union = DisjointSet(vclass.vars)
    for var in registry.all_eq_vars():
        if not boolvar_model.get(var, False):
            continue
        x, y = registry.eq_pair_of(var)
        if x in members and y in members:
            union.union(x, y)
    for index, group in enumerate(union.groups()):
        for member in group:
            values[member.name] = index


def lift_countermodel(
    info: FuncElimInfo, f_sep: Formula, sep_model: Interpretation
) -> Interpretation:
    """Lift a countermodel of ``F_sep`` to the original SUF vocabulary.

    Function (predicate) tables are rebuilt from the fresh constants: the
    ``i``-th occurrence defines the value at its argument tuple unless an
    earlier occurrence already defined that point (which mirrors the
    nested-ITE semantics exactly).
    """
    # Arguments of single-occurrence applications may mention constants
    # that vanished from F_sep entirely (the first occurrence of f(a) is
    # replaced by vf1 alone) — give those arbitrary default values.
    complete = Interpretation(
        vars=dict(sep_model.vars),
        bools=dict(sep_model.bools),
        func_default=sep_model.func_default,
        pred_default=sep_model.pred_default,
    )
    arg_terms = [
        a
        for entries in list(info.func_consts.values())
        + list(info.pred_consts.values())
        for args, _ in entries
        for a in args
    ]
    for term in arg_terms:
        for var in collect_vars(term):
            complete.vars.setdefault(var.name, 0)
        for bvar in collect_bool_vars(term):
            complete.bools.setdefault(bvar.name, False)
    for entries in info.func_consts.values():
        for _, var in entries:
            complete.vars.setdefault(var.name, 0)
    for entries in info.pred_consts.values():
        for _, var in entries:
            complete.bools.setdefault(var.name, False)

    lifted = Interpretation(
        vars=dict(complete.vars),
        bools=dict(complete.bools),
        func_default=sep_model.func_default,
        pred_default=sep_model.pred_default,
    )
    for symbol, entries in info.func_consts.items():
        table = lifted.funcs.setdefault(symbol, {})
        for args, var in entries:
            key = tuple(evaluate_term(a, complete) for a in args)
            if key not in table:
                table[key] = complete.var(var.name)
    for symbol, entries in info.pred_consts.items():
        table = lifted.preds.setdefault(symbol, {})
        for args, var in entries:
            key = tuple(evaluate_term(a, complete) for a in args)
            if key not in table:
                table[key] = complete.boolvar(var.name)
    return lifted
