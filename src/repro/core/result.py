"""Result and statistics types for the decision procedures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..encodings.hybrid import EncodingStats
from ..logic.semantics import Interpretation
from ..sat.solver import SatStats

__all__ = ["DecisionStats", "DecisionResult"]


@dataclass
class DecisionStats:
    """Timing and size measurements for one validity check.

    ``encode_seconds`` covers everything up to and including CNF
    generation (the paper's "time taken to translate the formula to a
    Boolean formula"); ``sat_seconds`` is the SAT search.  Their sum is the
    paper's "total time".
    """

    method: str = ""
    dag_size_suf: int = 0
    dag_size_sep: int = 0
    encode_seconds: float = 0.0
    sat_seconds: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    encoding: Optional[EncodingStats] = None
    sat: Optional[SatStats] = None

    @property
    def total_seconds(self) -> float:
        return self.encode_seconds + self.sat_seconds

    @property
    def conflict_clauses(self) -> int:
        """The paper's Figure-2 metric: conflict clauses added by the SAT
        solver."""
        return self.sat.learned_clauses if self.sat else 0

    @property
    def sep_predicates(self) -> int:
        """SepCnt summed over classes — the paper's Figure-3 x-axis."""
        return self.encoding.total_sep_count if self.encoding else 0

    def normalized_seconds(self) -> float:
        """Total time per thousand SUF DAG nodes (Figure 3's y-axis)."""
        knodes = max(self.dag_size_suf, 1) / 1000.0
        return self.total_seconds / knodes


@dataclass
class DecisionResult:
    """Outcome of :func:`repro.core.decision.check_validity`."""

    VALID = "VALID"
    INVALID = "INVALID"
    UNKNOWN = "UNKNOWN"
    TRANSLATION_LIMIT = "TRANSLATION_LIMIT"

    status: str
    stats: DecisionStats = field(default_factory=DecisionStats)
    counterexample: Optional[Interpretation] = None
    detail: str = ""

    @property
    def valid(self) -> Optional[bool]:
        """True / False when decided, ``None`` when a limit was hit."""
        if self.status == self.VALID:
            return True
        if self.status == self.INVALID:
            return False
        return None

    def __repr__(self) -> str:
        return "DecisionResult(status=%s, method=%s, total=%.3fs)" % (
            self.status,
            self.stats.method,
            self.stats.total_seconds,
        )
