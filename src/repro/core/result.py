"""Result and statistics types for the decision procedures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..encodings.hybrid import EncodingStats
from ..logic.semantics import Interpretation
from ..sat.preprocess import PreprocessStats
from ..sat.solver import SatStats
from .status import Status

__all__ = [
    "StageRecord",
    "CacheStats",
    "DecisionStats",
    "DecisionResult",
    "Status",
]


@dataclass
class CacheStats:
    """Result-cache counters for one solve (or an aggregation of many).

    Attached to :class:`DecisionStats` by the ``cached`` engine wrapper
    and the batch dedupe path (:func:`repro.engine.portfolio.solve_batch`)
    so cache behaviour shows up in the same telemetry stream as every
    other stage; ``repro bench-smoke`` aggregates these into the
    warm-vs-cold section of its report.
    """

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    stores: int = 0
    dedupes: int = 0

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    def merge(self, other: "CacheStats") -> None:
        self.hits_memory += other.hits_memory
        self.hits_disk += other.hits_disk
        self.misses += other.misses
        self.stores += other.stores
        self.dedupes += other.dedupes


@dataclass
class StageRecord:
    """One pipeline stage's wall time and counters.

    Every engine reports the same record shape (the counters differ), so
    telemetry can be aggregated uniformly across procedures — this is the
    per-stage breakdown behind ``repro check --stats``.
    """

    name: str
    seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    #: Non-numeric stage outputs threaded to later consumers (e.g. the
    #: ``cnf`` stage's EIJ→CNF-var map for cube-and-conquer splitting).
    #: Excluded from :meth:`describe` — counters are the human surface.
    artifacts: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        parts = "%-10s %8.3fs" % (self.name, self.seconds)
        if self.counters:
            parts += "  " + " ".join(
                "%s=%s" % (key, value)
                for key, value in sorted(self.counters.items())
            )
        return parts


@dataclass
class DecisionStats:
    """Timing and size measurements for one validity check.

    ``encode_seconds`` covers everything up to and including CNF
    generation (the paper's "time taken to translate the formula to a
    Boolean formula"); ``sat_seconds`` is the SAT search.  Their sum is the
    paper's "total time".  ``stages`` is the finer-grained uniform
    telemetry recorded by the engine layer (func-elim → encode → CNF →
    SAT → decode for the eager pipeline).
    """

    method: str = ""
    dag_size_suf: int = 0
    dag_size_sep: int = 0
    encode_seconds: float = 0.0
    sat_seconds: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    encoding: Optional[EncodingStats] = None
    preprocess: Optional[PreprocessStats] = None
    sat: Optional[SatStats] = None
    cache: Optional[CacheStats] = None
    stages: List[StageRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.encode_seconds + self.sat_seconds

    @property
    def conflict_clauses(self) -> int:
        """The paper's Figure-2 metric: conflict clauses added by the SAT
        solver."""
        return self.sat.learned_clauses if self.sat else 0

    @property
    def sep_predicates(self) -> int:
        """SepCnt summed over classes — the paper's Figure-3 x-axis."""
        return self.encoding.total_sep_count if self.encoding else 0

    def normalized_seconds(self) -> float:
        """Total time per thousand SUF DAG nodes (Figure 3's y-axis)."""
        knodes = max(self.dag_size_suf, 1) / 1000.0
        return self.total_seconds / knodes


@dataclass
class DecisionResult:
    """Outcome of :func:`repro.core.decision.check_validity`."""

    # String-compatible class constants, kept for backward compatibility
    # (``result.status == DecisionResult.VALID`` and ``== "VALID"`` both
    # keep working; see :class:`repro.core.status.Status`).
    VALID = Status.VALID
    INVALID = Status.INVALID
    UNKNOWN = Status.UNKNOWN
    TRANSLATION_LIMIT = Status.TRANSLATION_LIMIT

    status: Status
    stats: DecisionStats = field(default_factory=DecisionStats)
    counterexample: Optional[Interpretation] = None
    detail: str = ""

    @property
    def valid(self) -> Optional[bool]:
        """True / False when decided, ``None`` when a limit was hit."""
        if self.status == self.VALID:
            return True
        if self.status == self.INVALID:
            return False
        return None

    def __repr__(self) -> str:
        return "DecisionResult(status=%s, method=%s, total=%.3fs)" % (
            self.status,
            self.stats.method,
            self.stats.total_seconds,
        )
