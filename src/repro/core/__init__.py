"""Public decision-procedure API."""

from .decision import check_validity, decode_countermodel, lift_countermodel
from .result import DecisionResult, DecisionStats, StageRecord
from .status import Status

__all__ = [
    "check_validity",
    "decode_countermodel",
    "lift_countermodel",
    "DecisionResult",
    "DecisionStats",
    "StageRecord",
    "Status",
]
