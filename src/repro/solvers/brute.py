"""Brute-force small-model oracle.

The slowest, simplest, most obviously-correct decision procedure in the
repository: enumerate every interpretation over a finite domain that the
small-model property guarantees is sufficient, and evaluate the formula
with the reference semantics.  Every other solver is tested against this
one.

Domain sufficiency argument (separation logic): let ``n`` be the number of
symbolic constants and ``s`` the largest ``|offset|`` in the formula.  Any
integer model can be *compressed* — sort the values; a gap larger than
``2s + 1`` between adjacent values can be shrunk to exactly ``2s + 1``
without changing the truth of any atom ``x + k1 ⋈ y + k2`` (the offsets can
shift a comparison by at most ``2s``).  The compressed model fits in
``[0, (n - 1) · (2s + 1)]``, so enumerating that window is complete.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Tuple

from ..logic.semantics import Interpretation, evaluate
from ..logic.terms import Formula, FuncApp, PredApp
from ..logic.traversal import (
    collect_bool_vars,
    collect_vars,
    iter_dag,
    max_offset_magnitude,
)
from ..transform.func_elim import eliminate_applications

__all__ = [
    "BruteForceLimitExceeded",
    "sep_domain_bound",
    "brute_force_valid_sep",
    "brute_force_countermodel_sep",
    "brute_force_valid",
]


class BruteForceLimitExceeded(Exception):
    """The enumeration space is too large for the configured limit."""


def sep_domain_bound(f_sep: Formula) -> int:
    """Sufficient domain size ``D`` (values ``0..D-1``) for ``f_sep``."""
    n = len(collect_vars(f_sep))
    s = max_offset_magnitude(f_sep)
    if n == 0:
        return 1
    return (n - 1) * (2 * s + 1) + 1


def _interpretations(
    f_sep: Formula, domain: int, limit: int
) -> Iterator[Interpretation]:
    int_vars = collect_vars(f_sep)
    bool_vars = collect_bool_vars(f_sep)
    total = (domain ** len(int_vars)) * (2 ** len(bool_vars))
    if total > limit:
        raise BruteForceLimitExceeded(
            "would enumerate %d interpretations (limit %d)" % (total, limit)
        )
    for ints in itertools.product(range(domain), repeat=len(int_vars)):
        base = {v.name: value for v, value in zip(int_vars, ints)}
        for bools in itertools.product(
            (False, True), repeat=len(bool_vars)
        ):
            yield Interpretation(
                vars=dict(base),
                bools={
                    v.name: value for v, value in zip(bool_vars, bools)
                },
            )


def brute_force_countermodel_sep(
    f_sep: Formula,
    domain: Optional[int] = None,
    limit: int = 2_000_000,
) -> Optional[Interpretation]:
    """A falsifying interpretation of a separation formula, or ``None``."""
    for node in iter_dag(f_sep):
        if isinstance(node, (FuncApp, PredApp)):
            raise ValueError(
                "brute_force_*_sep expects an application-free formula; "
                "use brute_force_valid for SUF"
            )
    if domain is None:
        domain = sep_domain_bound(f_sep)
    for interp in _interpretations(f_sep, domain, limit):
        if not evaluate(f_sep, interp):
            return interp
    return None


def brute_force_valid_sep(
    f_sep: Formula,
    domain: Optional[int] = None,
    limit: int = 2_000_000,
) -> bool:
    """Validity of an application-free separation formula by enumeration."""
    return brute_force_countermodel_sep(f_sep, domain, limit) is None


def brute_force_valid(
    formula: Formula,
    limit: int = 2_000_000,
) -> bool:
    """Validity of a SUF formula: eliminate applications, then enumerate.

    Function elimination is validity-preserving (Bryant et al.), so the
    result is the SUF validity of ``formula``.
    """
    f_sep, _ = eliminate_applications(formula)
    return brute_force_valid_sep(f_sep, limit=limit)
