"""Decision procedures beyond the eager core: brute force, lazy (CVC-style),
and structural case splitting (SVC-style)."""

from .brute import (
    BruteForceLimitExceeded,
    brute_force_countermodel_sep,
    brute_force_valid,
    brute_force_valid_sep,
    sep_domain_bound,
)
from .lazy import LazyStats, check_validity_lazy
from .svclike import SvcStats, check_validity_svc

__all__ = [
    "BruteForceLimitExceeded",
    "brute_force_countermodel_sep",
    "brute_force_valid",
    "brute_force_valid_sep",
    "sep_domain_bound",
    "LazyStats",
    "check_validity_lazy",
    "SvcStats",
    "check_validity_svc",
]
