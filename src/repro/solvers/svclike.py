"""Structural case-splitting validity checker (the SVC baseline).

The Stanford Validity Checker decides formulas by recursive case analysis
on atomic formulas, backed by an arithmetic core; for separation predicates
"deciding a conjunction ... can be reduced to a shortest-path problem"
(paper §5).  This reimplementation keeps those characteristics:

* the formula is first flattened to a Boolean combination of *ground*
  separation atoms (ITEs eliminated by guard expansion);
* the solver picks an unresolved atom, splits on it, and simplifies the
  formula three-valuedly under the partial assignment;
* each asserted literal adds difference bounds to a stack-based theory
  context checked by Bellman–Ford; inconsistent contexts prune the branch;
* a branch whose formula simplifies to *false* with a consistent context
  is a countermodel — the formula is invalid;
* negated equalities split into the two strict orderings (``x < y`` /
  ``y < x``), as case-splitting provers do.

Conjunction-dominated formulas are decided after a handful of splits (the
simplification assigns most atoms by unit pressure), while
disjunction-heavy formulas trigger the exponential case enumeration the
paper observed — "for larger formulas involving several disjunctions,
SVC's run-time quickly blows up".

Like the original (which interprets functions over the rationals and was
not run on integer-density-dependent benchmarks), this solver does **not**
use the positive-equality optimisation; uninterpreted functions are
removed by the shared elimination pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.decision import lift_countermodel
from ..core.result import DecisionResult, DecisionStats
from ..encodings.sepvars import Bound
from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    Iff,
    Implies,
    Lt,
    Not,
    Or,
    TRUE,
)
from ..logic.traversal import dag_size, iter_dag, postorder
from ..logic.semantics import Interpretation
from ..theory.difference import check_bounds
from ..transform.func_elim import eliminate_applications
from ..transform.ground import enumerate_leaf_paths, split_ground

__all__ = ["SvcStats", "check_validity_svc"]


@dataclass
class SvcStats(DecisionStats):
    splits: int = 0
    theory_checks: int = 0
    pruned_branches: int = 0


class _Limits:
    def __init__(self, time_limit, max_splits, start):
        self.time_limit = time_limit
        self.max_splits = max_splits
        self.start = start
        self.exhausted = False


def _flatten_ites(f_sep: Formula) -> Formula:
    """Rewrite every atom into a guard-expanded Boolean combination of
    ground atoms (the pre-processing SVC's atom-level case split needs)."""
    from ..transform.ground import push_offsets

    pushed = push_offsets(f_sep)
    memo: Dict[Formula, Formula] = {}
    for node in postorder(pushed):
        if node in memo or not isinstance(node, Formula):
            continue
        if isinstance(node, (BoolConst, BoolVar)):
            memo[node] = node
        elif isinstance(node, Not):
            memo[node] = Not(memo[node.arg])
        elif isinstance(node, And):
            memo[node] = And(*[memo[a] for a in node.args])
        elif isinstance(node, Or):
            memo[node] = Or(*[memo[a] for a in node.args])
        elif isinstance(node, Implies):
            memo[node] = Implies(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Iff):
            memo[node] = Iff(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, (Eq, Lt)):
            memo[node] = _expand_atom(node, memo)
        else:
            raise TypeError("unknown formula kind: %r" % (type(node),))
    return memo[pushed]


def _expand_atom(atom: Formula, memo: Dict[Formula, Formula]) -> Formula:
    is_eq = isinstance(atom, Eq)
    disjuncts: List[Formula] = []
    for path1, g1 in enumerate_leaf_paths(atom.lhs):
        guard1 = [
            memo[c] if pol else Not(memo[c]) for c, pol in path1
        ]
        for path2, g2 in enumerate_leaf_paths(atom.rhs):
            guard2 = [
                memo[c] if pol else Not(memo[c]) for c, pol in path2
            ]
            ground = Eq(g1, g2) if is_eq else Lt(g1, g2)
            disjuncts.append(And(*(guard1 + guard2 + [ground])))
    return Or(*disjuncts)


def _pick_atom(formula: Formula, assignment: Dict[Formula, bool]):
    """First unassigned atom or Boolean constant symbol, in DAG order."""
    candidates = [
        n
        for n in iter_dag(formula)
        if isinstance(n, (Eq, Lt, BoolVar)) and n not in assignment
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda n: n.uid)


def _simplify(formula: Formula, assignment: Dict[Formula, bool]) -> Formula:
    memo: Dict[Formula, Formula] = {}
    for node in postorder(formula):
        if not isinstance(node, Formula) or node in memo:
            continue
        if isinstance(node, (Eq, Lt, BoolVar)):
            if node in assignment:
                memo[node] = TRUE if assignment[node] else FALSE
            else:
                memo[node] = node
        elif isinstance(node, BoolConst):
            memo[node] = node
        elif isinstance(node, Not):
            memo[node] = Not(memo[node.arg])
        elif isinstance(node, And):
            memo[node] = And(*[memo[a] for a in node.args])
        elif isinstance(node, Or):
            memo[node] = Or(*[memo[a] for a in node.args])
        elif isinstance(node, Implies):
            memo[node] = Implies(memo[node.lhs], memo[node.rhs])
        elif isinstance(node, Iff):
            memo[node] = Iff(memo[node.lhs], memo[node.rhs])
        else:
            raise TypeError("unknown formula kind: %r" % (type(node),))
    return memo[formula]


def _atom_bounds(atom: Formula, value: bool) -> List[List[Bound]]:
    """Bound alternatives asserted by an atom literal.

    Returns a list of alternatives (disjunction); each alternative is a
    conjunction of bounds.  Negated equalities yield two alternatives —
    the case split SVC performs on disequalities.
    """
    x, k1 = split_ground(atom.lhs)
    y, k2 = split_ground(atom.rhs)
    if isinstance(atom, Eq):
        c = k2 - k1
        if value:
            return [[Bound(x, y, c), Bound(y, x, -c)]]
        return [[Bound(x, y, c - 1)], [Bound(y, x, -c - 1)]]
    c = k2 - k1
    if value:
        return [[Bound(x, y, c - 1)]]
    return [[Bound(y, x, -c)]]


def check_validity_svc(
    formula: Formula,
    time_limit: Optional[float] = None,
    max_splits: Optional[int] = None,
    want_countermodel: bool = True,
) -> DecisionResult:
    """Decide SUF validity with recursive case splitting (SVC-style)."""
    stats = SvcStats(method="SVC")
    stats.dag_size_suf = dag_size(formula)
    start = time.perf_counter()

    f_sep, elim_info = eliminate_applications(formula)
    stats.dag_size_sep = dag_size(f_sep)
    flat = _flatten_ites(f_sep)
    stats.encode_seconds = time.perf_counter() - start

    limits = _Limits(time_limit, max_splits, start)
    t1 = time.perf_counter()
    found = _search(flat, {}, [], stats, limits)
    stats.sat_seconds = time.perf_counter() - t1

    if limits.exhausted:
        return DecisionResult(status=DecisionResult.UNKNOWN, stats=stats)
    if found is None:
        return DecisionResult(status=DecisionResult.VALID, stats=stats)
    assignment, bounds = found
    counterexample = None
    if want_countermodel:
        sep_model = _build_countermodel(f_sep, assignment, bounds)
        counterexample = lift_countermodel(elim_info, f_sep, sep_model)
    return DecisionResult(
        status=DecisionResult.INVALID,
        stats=stats,
        counterexample=counterexample,
    )


def _search(
    formula: Formula,
    assignment: Dict[Formula, bool],
    bounds: List[Bound],
    stats: SvcStats,
    limits: _Limits,
) -> Optional[Tuple[Dict[Formula, bool], List[Bound]]]:
    """Find an assignment falsifying ``formula`` with a consistent theory
    context; ``None`` when every branch is pruned or evaluates true."""
    if limits.exhausted:
        return None
    if (
        limits.time_limit is not None
        and time.perf_counter() - limits.start > limits.time_limit
    ) or (
        limits.max_splits is not None and stats.splits > limits.max_splits
    ):
        limits.exhausted = True
        return None

    simplified = _simplify(formula, assignment)
    if simplified is TRUE:
        return None  # this branch satisfies the formula: no countermodel here
    if simplified is FALSE:
        return (dict(assignment), list(bounds))

    atom = _pick_atom(simplified, assignment)
    if atom is None:
        raise AssertionError("non-constant formula with no atoms")

    for value in (False, True):
        stats.splits += 1
        assignment[atom] = value
        if isinstance(atom, BoolVar):
            alternatives: List[List[Bound]] = [[]]
        else:
            alternatives = _atom_bounds(atom, value)
        for extra in alternatives:
            candidate = bounds + extra
            stats.theory_checks += 1
            if not check_bounds(candidate).consistent:
                stats.pruned_branches += 1
                continue
            result = _search(formula, assignment, candidate, stats, limits)
            if result is not None:
                del assignment[atom]
                return result
        del assignment[atom]
    return None


def _build_countermodel(
    f_sep: Formula,
    assignment: Dict[Formula, bool],
    bounds: List[Bound],
) -> Interpretation:
    from ..logic.traversal import collect_bool_vars, collect_vars

    theory = check_bounds(bounds)
    values = {
        var: theory.model.get(var, 0) if theory.model else 0
        for var in collect_vars(f_sep)
    }
    bools = {
        bv: assignment.get(bv, False) for bv in collect_bool_vars(f_sep)
    }
    return Interpretation(
        vars={v.name: value for v, value in values.items()},
        bools={bv.name: value for bv, value in bools.items()},
    )
