"""Lazy SAT + theory-refinement decision procedure (the CVC baseline).

The Cooperating Validity Checker (Barrett, Dill, Stump; CAV'02) decides SUF
formulas by *lazy* Boolean abstraction:

1. replace every separation predicate with a fresh Boolean variable (no
   transitivity constraints at all);
2. call the SAT solver on the abstraction of ``¬F``;
3. if UNSAT — the formula is valid;
4. if SAT — check the asserted difference bounds with the theory solver;
   if consistent, the formula is invalid and the bounds yield an integer
   countermodel; otherwise add a *conflict clause* built from the
   negative-cycle explanation (the smallest inconsistent literal subset the
   cycle provides) and repeat.

Faithful-to-the-original choices:

* no positive-equality analysis (CVC interprets all constants generally);
* the refinement loop pays a theory check plus a SAT (re)start per round
  — the per-iteration overhead the paper measures against (CVC used a
  customised incremental Chaff; both an incremental mode and a
  restart-from-scratch mode are provided, the latter isolating the
  overhead in the ablation benchmarks);
* conflict clauses are minimal (one negative cycle each), mirroring
  "CVC tries to add conflict clauses that involve the smallest possible
  subset of literals from the satisfying assignment".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.decision import decode_countermodel, lift_countermodel
from ..core.result import DecisionResult, DecisionStats
from ..encodings.hybrid import encode_eij
from ..logic.terms import BoolVar, Formula
from ..logic.traversal import dag_size
from ..sat.cnf import Cnf
from ..sat.solver import CdclSolver
from ..sat.tseitin import to_cnf
from ..separation.analysis import analyze_separation
from ..theory.difference import check_bounds
from ..transform.func_elim import eliminate_applications

__all__ = ["LazyStats", "check_validity_lazy"]


@dataclass
class LazyStats(DecisionStats):
    """Adds refinement-loop counters to the common statistics."""

    iterations: int = 0
    conflict_clauses_added: int = 0
    theory_checks: int = 0


def check_validity_lazy(
    formula: Formula,
    max_iterations: Optional[int] = None,
    time_limit: Optional[float] = None,
    want_countermodel: bool = True,
    incremental: bool = True,
) -> DecisionResult:
    """Decide SUF validity with the lazy (CVC-style) procedure.

    ``incremental=True`` keeps one SAT solver alive across refinement
    rounds (conflict clauses are added to it and learned clauses carry
    over, as CVC's customised Chaff did); ``incremental=False`` restarts
    the SAT search from scratch every round, which isolates the
    per-iteration overhead the paper measures (see the lazy-vs-eager
    ablation benchmark).
    """
    stats = LazyStats(method="LAZY")
    stats.dag_size_suf = dag_size(formula)
    start = time.perf_counter()

    f_sep, elim_info = eliminate_applications(formula)
    stats.dag_size_sep = dag_size(f_sep)
    analysis = analyze_separation(f_sep, positive_equality=False)
    encoding = encode_eij(f_sep, analysis=analysis, transitivity=False)
    registry = encoding.registry

    cnf = to_cnf(encoding.check_formula)
    stats.encode_seconds = time.perf_counter() - start
    stats.cnf_vars = cnf.num_vars
    stats.cnf_clauses = len(cnf)
    stats.encoding = encoding.stats

    sat_start = time.perf_counter()
    solver: Optional[CdclSolver] = None
    while True:
        if (
            time_limit is not None
            and time.perf_counter() - start > time_limit
        ):
            stats.sat_seconds = time.perf_counter() - sat_start
            return DecisionResult(status=DecisionResult.UNKNOWN, stats=stats)
        if max_iterations is not None and stats.iterations >= max_iterations:
            stats.sat_seconds = time.perf_counter() - sat_start
            return DecisionResult(status=DecisionResult.UNKNOWN, stats=stats)

        stats.iterations += 1
        remaining = None
        if time_limit is not None:
            remaining = max(0.01, time_limit - (time.perf_counter() - start))
        if incremental and solver is not None:
            solver.time_limit = remaining
        else:
            solver = CdclSolver(cnf, time_limit=remaining)
        result = solver.solve()
        stats.sat = result.stats  # keep the last round's search stats

        if result.status == "UNKNOWN":
            stats.sat_seconds = time.perf_counter() - sat_start
            return DecisionResult(status=DecisionResult.UNKNOWN, stats=stats)
        if result.is_unsat:
            stats.sat_seconds = time.perf_counter() - sat_start
            return DecisionResult(status=DecisionResult.VALID, stats=stats)

        boolvar_model = _boolvar_model(cnf, result.model)
        bounds = registry.asserted_bounds(boolvar_model)
        stats.theory_checks += 1
        theory = check_bounds(bounds)

        if theory.consistent:
            stats.sat_seconds = time.perf_counter() - sat_start
            counterexample = None
            if want_countermodel:
                sep_model = decode_countermodel(encoding, boolvar_model)
                counterexample = lift_countermodel(
                    elim_info, f_sep, sep_model
                )
            return DecisionResult(
                status=DecisionResult.INVALID,
                stats=stats,
                counterexample=counterexample,
            )

        # Refine: block the negative cycle.  Each cycle bound was asserted
        # by some registry literal; the blocking clause negates them all.
        clause: List[int] = []
        for bound in theory.cycle:
            lit = registry.literal(bound.lhs, bound.rhs, bound.c)
            clause.append(-_dimacs_literal(cnf, lit))
        cnf.add_clause(clause)
        if incremental:
            solver.add_clause(clause)
        stats.conflict_clauses_added += 1


def _boolvar_model(cnf: Cnf, model: Dict[int, bool]) -> Dict[BoolVar, bool]:
    out: Dict[BoolVar, bool] = {}
    for var, name in cnf.names.items():
        if isinstance(name, BoolVar) and var in model:
            out[name] = model[var]
    return out


def _dimacs_literal(cnf: Cnf, literal) -> int:
    """Map a registry literal (BoolVar or its negation) to a DIMACS lit."""
    from ..logic.terms import Not

    if isinstance(literal, Not):
        return -cnf.var_for(literal.arg)
    return cnf.var_for(literal)
