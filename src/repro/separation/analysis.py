"""Steps 1–4 of the paper's hybrid method (§4): classes, domains, SepCnt.

Given an application-free separation-logic formula ``F_sep``, this module

1. runs the positive-equality analysis to split the symbolic constants into
   ``V_p`` (encodable under maximal diversity) and ``V_g``;
2. pushes offsets through ITEs so every atom ranges over *ground terms*;
3. groups the ``V_g`` constants into equivalence classes: constants that are
   compared to each other — directly or through ITE branches — land in the
   same class, so each class can be encoded independently;
4. computes, per class, the small-model domain size
   ``range(Vi) = sum over v of (u(v) - l(v) + 1)``
   (``u``/``l`` = max/min offset of ``v`` in any ground term) and the
   ``SepCnt`` upper bound on the number of separation predicates whose two
   sides fall in that class.

The result object is everything the SD / EIJ / HYBRID encoders need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..logic.terms import Eq, Formula, Lt, Var
from ..logic.traversal import iter_dag
from ..transform.ground import (
    ground_terms_of,
    leaf_count,
    push_offsets,
    split_ground,
)
from ..transform.polarity import PolarityInfo, analyze_polarity
from .unionfind import DisjointSet

__all__ = ["VarClass", "SeparationAnalysis", "analyze_separation"]


@dataclass
class VarClass:
    """One equivalence class of general (``V_g``) symbolic constants."""

    index: int
    vars: List[Var]
    upper: Dict[Var, int] = field(default_factory=dict)  # u(v)
    lower: Dict[Var, int] = field(default_factory=dict)  # l(v)
    range_size: int = 0
    sep_count: int = 0
    # p-constants that appear (as ground leaves) in this class's atoms;
    # the SD encoder gives them concrete codes outside the g-domain.
    p_leaves: List[Var] = field(default_factory=list)
    max_span: int = 0  # largest |offset| occurring in the class's leaves
    has_inequality: bool = False  # some class atom is a strict <
    has_offset: bool = False  # some class leaf carries a nonzero offset

    def __contains__(self, var: Var) -> bool:
        return var in self.upper or var in set(self.vars)


@dataclass
class SeparationAnalysis:
    """Everything the encoders need to know about ``F_sep``."""

    original: Formula
    pushed: Formula  # offsets pushed through ITEs
    polarity: PolarityInfo
    classes: List[VarClass]
    class_of: Dict[Var, VarClass]  # V_g constant -> its class
    atom_class: Dict[Formula, Optional[VarClass]]  # atom -> class (or None)

    @property
    def p_vars(self) -> Set[Var]:
        return self.polarity.p_vars

    @property
    def g_vars(self) -> Set[Var]:
        return self.polarity.g_vars

    def total_sep_count(self) -> int:
        return sum(c.sep_count for c in self.classes)

    def max_range(self) -> int:
        return max((c.range_size for c in self.classes), default=0)

    def total_range(self) -> int:
        return sum(c.range_size for c in self.classes)


def analyze_separation(
    f_sep: Formula, positive_equality: bool = True
) -> SeparationAnalysis:
    """Run steps 1–4 of §4 on an application-free formula.

    ``positive_equality=False`` disables the V_p optimisation (every
    symbolic constant is treated as general); the lazy and SVC-style
    baseline solvers use this mode because the original tools had no such
    analysis.
    """
    polarity = analyze_polarity(f_sep)
    if not positive_equality:
        polarity.g_vars = polarity.g_vars | polarity.p_vars
        polarity.p_vars = set()
    pushed = push_offsets(f_sep)

    atoms = [n for n in iter_dag(pushed) if isinstance(n, (Eq, Lt))]
    atoms.sort(key=lambda a: a.uid)

    p_vars = polarity.p_vars
    union = DisjointSet(polarity.g_vars)

    # Per-atom ground leaves, split into g-bases and p-bases.
    atom_leaves: Dict[Formula, Tuple[List, List]] = {}
    for atom in atoms:
        g_bases: List[Tuple[Var, int]] = []
        p_bases: List[Tuple[Var, int]] = []
        for side in (atom.lhs, atom.rhs):
            for ground in ground_terms_of(side):
                base, k = split_ground(ground)
                if base in p_vars:
                    p_bases.append((base, k))
                else:
                    g_bases.append((base, k))
        atom_leaves[atom] = (g_bases, p_bases)
        union.union_all(base for base, _ in g_bases)

    # Materialise the classes.
    groups = union.groups()
    classes: List[VarClass] = []
    class_of: Dict[Var, VarClass] = {}
    for index, group in enumerate(groups):
        vclass = VarClass(index=index, vars=list(group))
        classes.append(vclass)
        for var in group:
            class_of[var] = vclass

    # Domain bounds u(v) / l(v) from every ground leaf in the formula.
    for atom in atoms:
        g_bases, p_bases = atom_leaves[atom]
        for base, k in g_bases:
            vclass = class_of[base]
            vclass.upper[base] = max(vclass.upper.get(base, 0), k)
            vclass.lower[base] = min(vclass.lower.get(base, 0), k)
            vclass.max_span = max(vclass.max_span, abs(k))
        if g_bases:
            vclass = class_of[g_bases[0][0]]
            for base, k in p_bases:
                if base not in vclass.p_leaves:
                    vclass.p_leaves.append(base)
                vclass.max_span = max(vclass.max_span, abs(k))

    for vclass in classes:
        vclass.range_size = sum(
            vclass.upper.get(v, 0) - vclass.lower.get(v, 0) + 1
            for v in vclass.vars
        )

    # SepCnt: per atom, the product of the two sides' ground-term counts
    # (paper §4 step 4 — an upper bound on per-constraint predicates).
    atom_class: Dict[Formula, Optional[VarClass]] = {}
    for atom in atoms:
        g_bases, _ = atom_leaves[atom]
        if not g_bases:
            atom_class[atom] = None  # pure-p atom: encoded as a constant
            continue
        vclass = class_of[g_bases[0][0]]
        atom_class[atom] = vclass
        vclass.sep_count += leaf_count(atom.lhs) * leaf_count(atom.rhs)
        if isinstance(atom, Lt):
            vclass.has_inequality = True
        if any(k != 0 for _, k in g_bases) or any(
            k != 0 for _, k in atom_leaves[atom][1]
        ):
            vclass.has_offset = True

    # Tighter bound for equality-only classes: with no offsets and no
    # inequalities, the per-constraint encoding allocates at most one
    # Boolean variable per *pair* of class constants, so C(n, 2) caps the
    # predicate count regardless of how many ITE ground-term pairs the
    # per-atom products counted.  (Still an upper bound in the paper's
    # sense — just without the double counting the paper's own footnote
    # acknowledges.)
    for vclass in classes:
        if not (vclass.has_inequality or vclass.has_offset):
            n = len(vclass.vars)
            vclass.sep_count = min(vclass.sep_count, n * (n - 1) // 2)

    return SeparationAnalysis(
        original=f_sep,
        pushed=pushed,
        polarity=polarity,
        classes=classes,
        class_of=class_of,
        atom_class=atom_class,
    )
