"""A small union–find (disjoint set) with path compression and union by rank.

Used to build the paper's equivalence classes of symbolic constants: two
constants share a class when they are compared (directly or through ITE
branches) by an equality or inequality.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, List, TypeVar

T = TypeVar("T", bound=Hashable)

__all__ = ["DisjointSet"]


class DisjointSet(Generic[T]):
    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._rank: Dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def find(self, item: T) -> T:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the classes of ``a`` and ``b``; returns the new root."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def union_all(self, items: Iterable[T]) -> None:
        it = iter(items)
        try:
            first = next(it)
        except StopIteration:
            return
        for item in it:
            self.union(first, item)

    def groups(self) -> List[List[T]]:
        """All classes, each sorted; the list itself sorted by first item."""
        by_root: Dict[T, List[T]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        out = [sorted(group, key=repr) for group in by_root.values()]
        out.sort(key=lambda g: repr(g[0]))
        return out
