"""Separation-logic analyses: equivalence classes, domains, SepCnt."""

from .analysis import SeparationAnalysis, VarClass, analyze_separation
from .unionfind import DisjointSet

__all__ = [
    "SeparationAnalysis",
    "VarClass",
    "analyze_separation",
    "DisjointSet",
]
