"""The ``repro serve`` loop: line-delimited JSON over stdin/stdout.

One JSON object per input line is one validity request; one JSON object
per output line is its response (see ``docs/serve-protocol.md`` for the
schema).  The loop is a bounded pipeline:

* a *reader* thread parses stdin lines and enqueues them on a bounded
  queue — when the queue is full the request is **rejected immediately**
  with an ``overloaded`` error instead of buffering unboundedly
  (backpressure is the client's signal to slow down);
* ``workers`` worker threads dequeue requests and solve them, each under
  its own deadline measured from *receipt* (queue wait counts — a
  request that waited past its deadline fails fast without solving).
  With forking enabled (the default) the solve runs as a single-member
  parallel portfolio race, so the deadline is *hard*: the child process
  is killed when time is up;
* responses are serialized by a writer lock, so lines never interleave.

``SIGTERM``/``SIGINT`` trigger graceful shutdown: no new requests are
accepted (late arrivals get a ``shutdown`` error), everything already
accepted is drained and answered, a ``bye`` event is emitted, and the
process exits 0.

All solves go through the shared result cache
(:mod:`repro.service.cache`) unless disabled, so repeated and
alpha-isomorphic requests within one server lifetime are answered from
memory.
"""

from __future__ import annotations

import json
import queue
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from ..encodings.hybrid import DEFAULT_SEP_THOLD
from ..engine import registry
from ..engine.contract import SolveOutcome, SolveRequest
from ..engine.portfolio import solve_portfolio
from ..logic.parser import ParseError, parse_formula
from .cache import (
    ResultCache,
    config_fingerprint,
    interp_to_jsonable,
    solve_cached,
)

__all__ = ["ServeConfig", "run_server"]

#: Poll granularity for worker dequeue / drain waits.
_TICK = 0.05


@dataclass
class ServeConfig:
    """Knobs for :func:`run_server` (mirrors the ``repro serve`` flags)."""

    workers: int = 2
    queue_size: int = 16
    engine: str = "hybrid"
    default_timeout: Optional[float] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    cache_max_entries: int = 4096
    #: Solve via a forked single-member portfolio race so deadlines can
    #: kill a stuck solve.  ``False`` solves in-process (deterministic,
    #: fork-free) but can only observe a deadline between engines.
    fork: bool = True
    #: Install SIGTERM/SIGINT handlers (only possible from the main
    #: thread; tests driving run_server from a helper thread disable it).
    install_signal_handlers: bool = True


@dataclass
class _ServerState:
    config: ServeConfig
    out: IO[str]
    cache: Optional[ResultCache]
    jobs: "queue.Queue[Tuple[Dict[str, Any], float]]"
    stop: threading.Event = field(default_factory=threading.Event)
    eof: threading.Event = field(default_factory=threading.Event)
    write_lock: threading.Lock = field(default_factory=threading.Lock)
    counter_lock: threading.Lock = field(default_factory=threading.Lock)
    served: int = 0
    rejected: int = 0
    in_flight: int = 0

    def write(self, obj: Dict[str, Any]) -> None:
        line = json.dumps(obj, sort_keys=True)
        with self.write_lock:
            self.out.write(line + "\n")
            self.out.flush()

    def bump(self, attr: str, delta: int = 1) -> None:
        with self.counter_lock:
            setattr(self, attr, getattr(self, attr) + delta)


def _error_response(
    rid: Any, kind: str, message: str, **extra: Any
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "id": rid,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }
    response.update(extra)
    return response


def _reader(state: _ServerState, inp: IO[str]) -> None:
    """Parse stdin lines into the bounded queue; reject when full."""
    for line in inp:
        line = line.strip()
        if not line:
            continue
        if state.stop.is_set():
            rid = None
            try:
                rid = json.loads(line).get("id")
            except (ValueError, AttributeError):
                pass
            state.write(
                _error_response(rid, "shutdown", "server is shutting down")
            )
            state.bump("rejected")
            continue
        try:
            payload = json.loads(line)
        except ValueError as exc:
            state.write(
                _error_response(None, "parse", "invalid JSON: %s" % exc)
            )
            state.bump("rejected")
            continue
        if not isinstance(payload, dict):
            state.write(
                _error_response(
                    None, "bad-request", "request must be a JSON object"
                )
            )
            state.bump("rejected")
            continue
        try:
            state.jobs.put_nowait((payload, time.monotonic()))
        except queue.Full:
            state.write(
                _error_response(
                    payload.get("id"),
                    "overloaded",
                    "queue full (%d pending); retry later"
                    % state.jobs.maxsize,
                )
            )
            state.bump("rejected")
    state.eof.set()


def _parse_request(
    payload: Dict[str, Any], config: ServeConfig
) -> Tuple[SolveRequest, List[str], Optional[float]]:
    """Validate one request payload; raises ValueError with a message."""
    formula_text = payload.get("formula")
    if not isinstance(formula_text, str) or not formula_text.strip():
        raise ValueError("'formula' must be a non-empty s-expression string")
    formula = parse_formula(formula_text)

    spec = payload.get("engine", config.engine)
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("'engine' must be an engine name")
    members = [name.strip() for name in spec.split(",") if name.strip()]
    known = registry.list_engines()
    for name in members:
        if name not in known:
            raise ValueError(
                "unknown engine %r; registered: %s" % (name, ", ".join(known))
            )

    timeout = payload.get("timeout", config.default_timeout)
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ValueError("'timeout' must be a positive number of seconds")
        timeout = float(timeout)

    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise ValueError("'options' must be a JSON object")

    request = SolveRequest(
        formula=formula,
        want_countermodel=bool(payload.get("want_countermodel", True)),
        time_limit=timeout,
        sep_thold=int(payload.get("sep_thold", DEFAULT_SEP_THOLD)),
        preprocess=bool(payload.get("preprocess", True)),
        options=dict(options),
    )
    return request, members, timeout


def _cache_section(outcome: SolveOutcome) -> Optional[Dict[str, int]]:
    stats = outcome.stats.cache
    if stats is None:
        return None
    return {
        "hits_memory": stats.hits_memory,
        "hits_disk": stats.hits_disk,
        "misses": stats.misses,
        "stores": stats.stores,
        "dedupes": stats.dedupes,
    }


def _solve_one(
    state: _ServerState,
    payload: Dict[str, Any],
    received: float,
) -> Dict[str, Any]:
    rid = payload.get("id")
    config = state.config
    try:
        request, members, timeout = _parse_request(payload, config)
    except ParseError as exc:
        return _error_response(rid, "parse", str(exc))
    except ValueError as exc:
        return _error_response(rid, "bad-request", str(exc))

    started = time.monotonic()
    if timeout is not None:
        remaining = timeout - (started - received)
        if remaining <= 0:
            return _error_response(
                rid,
                "deadline",
                "deadline of %.3fs expired while queued" % timeout,
                wall_seconds=round(started - received, 6),
            )
    else:
        remaining = None

    def solver(req: SolveRequest) -> SolveOutcome:
        return solve_portfolio(
            req,
            engines=members,
            parallel=config.fork,
            deadline=remaining,
        )

    try:
        if state.cache is not None:
            fingerprint = config_fingerprint(",".join(members), request)
            outcome = solve_cached(
                request,
                solver,
                state.cache,
                fingerprint,
                engine_label="serve",
            )
        else:
            outcome = solver(request)
    except Exception as exc:  # a request must never kill a worker
        return _error_response(
            rid, "internal", "%s: %s" % (type(exc).__name__, exc)
        )

    elapsed = time.monotonic() - received
    if (
        timeout is not None
        and not outcome.decided
        and elapsed >= timeout
    ):
        return _error_response(
            rid,
            "deadline",
            "deadline of %.3fs expired during solve" % timeout,
            wall_seconds=round(elapsed, 6),
        )

    response: Dict[str, Any] = {
        "id": rid,
        "ok": True,
        "status": str(outcome.status),
        "valid": outcome.valid,
        "engine": ",".join(members),
        "winner": outcome.winner,
        "wall_seconds": round(elapsed, 6),
        "detail": outcome.detail,
    }
    cache_section = _cache_section(outcome)
    if cache_section is not None:
        response["cache"] = cache_section
    if outcome.counterexample is not None and request.want_countermodel:
        response["countermodel"] = interp_to_jsonable(outcome.counterexample)
    return response


def _worker(state: _ServerState) -> None:
    while True:
        try:
            payload, received = state.jobs.get(timeout=_TICK)
        except queue.Empty:
            if state.eof.is_set() or state.stop.is_set():
                return
            continue
        state.bump("in_flight")
        try:
            response = _solve_one(state, payload, received)
        except Exception as exc:  # pragma: no cover - belt and braces
            response = _error_response(
                payload.get("id"),
                "internal",
                "%s: %s" % (type(exc).__name__, exc),
            )
        state.write(response)
        state.bump("served")
        state.bump("in_flight", -1)
        state.jobs.task_done()


def run_server(
    config: Optional[ServeConfig] = None,
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
) -> int:
    """Serve line-delimited JSON requests until EOF or SIGTERM; returns 0.

    Emits a ``{"event": "ready"}`` line once the workers are up — clients
    should wait for it before sending — and a ``{"event": "bye"}`` line
    after the drain, with totals.
    """
    config = config or ServeConfig()
    inp = stdin if stdin is not None else sys.stdin
    out = stdout if stdout is not None else sys.stdout
    cache: Optional[ResultCache] = None
    if config.use_cache:
        cache = ResultCache(
            max_entries=config.cache_max_entries, disk_dir=config.cache_dir
        )
    state = _ServerState(
        config=config,
        out=out,
        cache=cache,
        jobs=queue.Queue(maxsize=max(1, config.queue_size)),
    )

    if config.install_signal_handlers:
        def _request_stop(signum: int, frame: Optional[Any]) -> None:  # pragma: no cover - signal path
            state.stop.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    workers = [
        threading.Thread(
            target=_worker, args=(state,), name="serve-worker-%d" % i
        )
        for i in range(max(1, config.workers))
    ]
    for thread in workers:
        thread.start()

    # ``ready`` goes out before the reader starts so it is always the
    # first line a client sees.
    state.write(
        {
            "event": "ready",
            "workers": len(workers),
            "queue_size": state.jobs.maxsize,
            "engine": config.engine,
            "cache": config.use_cache,
        }
    )
    reader = threading.Thread(
        target=_reader, args=(state, inp), name="serve-reader", daemon=True
    )
    reader.start()

    # Wait for either EOF (normal end of input) or a stop signal; then
    # drain: everything already accepted is still answered.
    while not (state.eof.is_set() or state.stop.is_set()):
        time.sleep(_TICK)
    state.jobs.join()
    state.stop.set()
    for thread in workers:
        thread.join()

    totals: Dict[str, Any] = {
        "event": "bye",
        "served": state.served,
        "rejected": state.rejected,
    }
    if cache is not None:
        totals["cache"] = {
            "hits_memory": cache.stats.hits_memory,
            "hits_disk": cache.stats.hits_disk,
            "misses": cache.stats.misses,
            "stores": cache.stats.stores,
        }
    state.write(totals)
    return 0
