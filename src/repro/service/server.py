"""The ``repro serve`` loop: line-delimited JSON over stdin/stdout.

One JSON object per input line is one validity request; one JSON object
per output line is its response (see ``docs/serve-protocol.md`` for the
schema).  The loop is a bounded pipeline:

* a *reader* thread parses stdin lines and enqueues them on a bounded
  queue — when the queue is full the request is **rejected immediately**
  with an ``overloaded`` error instead of buffering unboundedly
  (backpressure is the client's signal to slow down);
* ``workers`` worker threads dequeue requests and solve them, each under
  its own deadline measured from *receipt* (queue wait counts — a
  request that waited past its deadline fails fast without solving).
  With forking enabled (the default) the solve runs as a single-member
  parallel portfolio race, so the deadline is *hard*: the child process
  is killed when time is up;
* responses are serialized by a writer lock, so lines never interleave.

``SIGTERM``/``SIGINT`` trigger graceful shutdown: no new requests are
accepted (late arrivals get a ``shutdown`` error), everything already
accepted is drained and answered, a ``bye`` event is emitted, and the
process exits 0.

Stateful **sessions** ride the same wire: ``{"kind": "open"}`` creates an
incremental :class:`repro.engine.session.Session` and returns its id;
``assert`` / ``push`` / ``pop`` / ``check`` / ``close`` requests carry
``"session": <id>``.  Ops for one session are answered strictly in
arrival order (each session holds a FIFO of pending ops drained by one
worker at a time), while different sessions interleave freely across
workers.  Checks honor per-session deadlines (an ``open``-time default,
overridable per check) measured from receipt, and the graceful drain
evicts every open session after answering its accepted ops.

All solves go through the shared result cache
(:mod:`repro.service.cache`) unless disabled, so repeated and
alpha-isomorphic requests within one server lifetime are answered from
memory.
"""

from __future__ import annotations

import collections
import json
import queue
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from ..encodings.hybrid import DEFAULT_SEP_THOLD
from ..engine import registry
from ..engine.contract import SolveOutcome, SolveRequest
from ..engine.portfolio import solve_portfolio
from ..engine.session import UNKNOWN as SESSION_UNKNOWN
from ..engine.session import Session, SessionError
from ..logic.parser import ParseError, parse_formula
from ..logic.printer import to_sexpr
from .cache import (
    ResultCache,
    config_fingerprint,
    interp_to_jsonable,
    solve_cached,
)

__all__ = ["ServeConfig", "run_server"]

#: Poll granularity for worker dequeue / drain waits.
_TICK = 0.05

#: Request kinds that address a session created with ``open``.
_SESSION_OP_KINDS = ("assert", "push", "pop", "check", "close")


@dataclass
class ServeConfig:
    """Knobs for :func:`run_server` (mirrors the ``repro serve`` flags)."""

    workers: int = 2
    queue_size: int = 16
    engine: str = "hybrid"
    default_timeout: Optional[float] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    cache_max_entries: int = 4096
    #: Solve via a forked single-member portfolio race so deadlines can
    #: kill a stuck solve.  ``False`` solves in-process (deterministic,
    #: fork-free) but can only observe a deadline between engines.
    fork: bool = True
    #: Install SIGTERM/SIGINT handlers (only possible from the main
    #: thread; tests driving run_server from a helper thread disable it).
    install_signal_handlers: bool = True


@dataclass
class _ServeSession:
    """One wire-protocol session: the engine-layer Session plus the
    per-session FIFO that keeps its ops ordered across workers."""

    sid: str
    session: Session
    default_timeout: Optional[float] = None
    pending: "collections.deque[Tuple[Dict[str, Any], float]]" = field(
        default_factory=collections.deque
    )
    busy: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class _ServerState:
    config: ServeConfig
    out: IO[str]
    cache: Optional[ResultCache]
    jobs: "queue.Queue[Tuple[Dict[str, Any], float]]"
    stop: threading.Event = field(default_factory=threading.Event)
    eof: threading.Event = field(default_factory=threading.Event)
    write_lock: threading.Lock = field(default_factory=threading.Lock)
    counter_lock: threading.Lock = field(default_factory=threading.Lock)
    served: int = 0
    rejected: int = 0
    in_flight: int = 0
    sessions: Dict[str, _ServeSession] = field(default_factory=dict)
    sessions_lock: threading.Lock = field(default_factory=threading.Lock)
    sessions_opened: int = 0
    sessions_evicted: int = 0

    def write(self, obj: Dict[str, Any]) -> None:
        line = json.dumps(obj, sort_keys=True)
        with self.write_lock:
            self.out.write(line + "\n")
            self.out.flush()

    def bump(self, attr: str, delta: int = 1) -> None:
        with self.counter_lock:
            setattr(self, attr, getattr(self, attr) + delta)


def _error_response(
    rid: Any, kind: str, message: str, **extra: Any
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "id": rid,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }
    response.update(extra)
    return response


def _reader(state: _ServerState, inp: IO[str]) -> None:
    """Parse stdin lines into the bounded queue; reject when full.

    Session requests are routed here as well: ``open`` is handled inline
    (cheap, and it must answer with the new id before any op can target
    it), other session ops are appended to their session's FIFO so they
    run in arrival order.
    """
    for line in inp:
        line = line.strip()
        if not line:
            continue
        if state.stop.is_set():
            rid = None
            try:
                rid = json.loads(line).get("id")
            except (ValueError, AttributeError):
                pass
            state.write(
                _error_response(rid, "shutdown", "server is shutting down")
            )
            state.bump("rejected")
            continue
        try:
            payload = json.loads(line)
        except ValueError as exc:
            state.write(
                _error_response(None, "parse", "invalid JSON: %s" % exc)
            )
            state.bump("rejected")
            continue
        if not isinstance(payload, dict):
            state.write(
                _error_response(
                    None, "bad-request", "request must be a JSON object"
                )
            )
            state.bump("rejected")
            continue
        kind = payload.get("kind")
        if kind == "open":
            state.write(_open_session(state, payload))
            state.bump("served")
            continue
        if kind in _SESSION_OP_KINDS:
            _enqueue_session_op(state, payload, time.monotonic())
            continue
        if kind not in (None, "solve"):
            state.write(
                _error_response(
                    payload.get("id"),
                    "bad-request",
                    "unknown request kind %r; expected solve, open, %s"
                    % (kind, ", ".join(_SESSION_OP_KINDS)),
                )
            )
            state.bump("rejected")
            continue
        try:
            state.jobs.put_nowait((payload, time.monotonic()))
        except queue.Full:
            state.write(
                _error_response(
                    payload.get("id"),
                    "overloaded",
                    "queue full (%d pending); retry later"
                    % state.jobs.maxsize,
                )
            )
            state.bump("rejected")
    state.eof.set()


def _open_session(
    state: _ServerState, payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Create a session; answered inline by the reader."""
    rid = payload.get("id")
    engine = payload.get("engine", state.config.engine)
    if not isinstance(engine, str) or not engine.strip():
        return _error_response(
            rid, "bad-request", "'engine' must be an engine name"
        )
    timeout = payload.get("timeout", state.config.default_timeout)
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            return _error_response(
                rid,
                "bad-request",
                "'timeout' must be a positive number of seconds",
            )
        timeout = float(timeout)
    try:
        session = Session(
            engine=engine.strip(),
            cache=state.cache,
            time_limit=timeout,
            want_model=bool(payload.get("want_countermodel", True)),
        )
    except ValueError as exc:
        return _error_response(rid, "bad-request", str(exc))
    with state.sessions_lock:
        state.sessions_opened += 1
        sid = "s%d" % state.sessions_opened
        state.sessions[sid] = _ServeSession(
            sid=sid, session=session, default_timeout=timeout
        )
    return {"id": rid, "ok": True, "session": sid, "engine": engine.strip()}


def _enqueue_session_op(
    state: _ServerState, payload: Dict[str, Any], received: float
) -> None:
    """Append one op to its session's FIFO and arm a drain turn."""
    rid = payload.get("id")
    sid = payload.get("session")
    with state.sessions_lock:
        sess = state.sessions.get(sid) if isinstance(sid, str) else None
    if sess is None:
        state.write(
            _error_response(
                rid,
                "unknown-session-id",
                "unknown session id %r (open a session first)" % (sid,),
            )
        )
        state.bump("rejected")
        return
    with sess.lock:
        if len(sess.pending) >= state.jobs.maxsize:
            state.write(
                _error_response(
                    rid,
                    "overloaded",
                    "session %s has %d pending op(s); retry later"
                    % (sess.sid, len(sess.pending)),
                )
            )
            state.bump("rejected")
            return
        sess.pending.append((payload, received))
        if sess.busy:
            return
        sess.busy = True
    try:
        state.jobs.put_nowait(({"_session_turn": sess.sid}, received))
    except queue.Full:
        with sess.lock:
            sess.pending.pop()
            sess.busy = False
        state.write(
            _error_response(
                rid,
                "overloaded",
                "queue full (%d pending); retry later" % state.jobs.maxsize,
            )
        )
        state.bump("rejected")


def _parse_request(
    payload: Dict[str, Any], config: ServeConfig
) -> Tuple[SolveRequest, List[str], Optional[float]]:
    """Validate one request payload; raises ValueError with a message."""
    formula_text = payload.get("formula")
    if not isinstance(formula_text, str) or not formula_text.strip():
        raise ValueError("'formula' must be a non-empty s-expression string")
    formula = parse_formula(formula_text)

    spec = payload.get("engine", config.engine)
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("'engine' must be an engine name")
    members = [name.strip() for name in spec.split(",") if name.strip()]
    known = registry.list_engines()
    for name in members:
        if name not in known:
            raise ValueError(
                "unknown engine %r; registered: %s" % (name, ", ".join(known))
            )

    timeout = payload.get("timeout", config.default_timeout)
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ValueError("'timeout' must be a positive number of seconds")
        timeout = float(timeout)

    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise ValueError("'options' must be a JSON object")

    request = SolveRequest(
        formula=formula,
        want_countermodel=bool(payload.get("want_countermodel", True)),
        time_limit=timeout,
        sep_thold=int(payload.get("sep_thold", DEFAULT_SEP_THOLD)),
        preprocess=bool(payload.get("preprocess", True)),
        options=dict(options),
    )
    return request, members, timeout


def _cache_section(outcome: SolveOutcome) -> Optional[Dict[str, int]]:
    stats = outcome.stats.cache
    if stats is None:
        return None
    return {
        "hits_memory": stats.hits_memory,
        "hits_disk": stats.hits_disk,
        "misses": stats.misses,
        "stores": stats.stores,
        "dedupes": stats.dedupes,
    }


def _solve_one(
    state: _ServerState,
    payload: Dict[str, Any],
    received: float,
) -> Dict[str, Any]:
    rid = payload.get("id")
    config = state.config
    try:
        request, members, timeout = _parse_request(payload, config)
    except ParseError as exc:
        return _error_response(rid, "parse", str(exc))
    except ValueError as exc:
        return _error_response(rid, "bad-request", str(exc))

    started = time.monotonic()
    if timeout is not None:
        remaining = timeout - (started - received)
        if remaining <= 0:
            return _error_response(
                rid,
                "deadline",
                "deadline of %.3fs expired while queued" % timeout,
                wall_seconds=round(started - received, 6),
            )
    else:
        remaining = None

    def solver(req: SolveRequest) -> SolveOutcome:
        return solve_portfolio(
            req,
            engines=members,
            parallel=config.fork,
            deadline=remaining,
        )

    try:
        if state.cache is not None:
            fingerprint = config_fingerprint(",".join(members), request)
            outcome = solve_cached(
                request,
                solver,
                state.cache,
                fingerprint,
                engine_label="serve",
            )
        else:
            outcome = solver(request)
    except Exception as exc:  # a request must never kill a worker
        return _error_response(
            rid, "internal", "%s: %s" % (type(exc).__name__, exc)
        )

    elapsed = time.monotonic() - received
    if (
        timeout is not None
        and not outcome.decided
        and elapsed >= timeout
    ):
        return _error_response(
            rid,
            "deadline",
            "deadline of %.3fs expired during solve" % timeout,
            wall_seconds=round(elapsed, 6),
        )

    response: Dict[str, Any] = {
        "id": rid,
        "ok": True,
        "status": str(outcome.status),
        "valid": outcome.valid,
        "engine": ",".join(members),
        "winner": outcome.winner,
        "wall_seconds": round(elapsed, 6),
        "detail": outcome.detail,
    }
    cache_section = _cache_section(outcome)
    if cache_section is not None:
        response["cache"] = cache_section
    if outcome.counterexample is not None and request.want_countermodel:
        response["countermodel"] = interp_to_jsonable(outcome.counterexample)
    return response


def _session_check(
    state: _ServerState,
    sess: _ServeSession,
    payload: Dict[str, Any],
    received: float,
) -> Dict[str, Any]:
    rid = payload.get("id")
    timeout = payload.get("timeout", sess.default_timeout)
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ValueError(
                "'timeout' must be a positive number of seconds"
            )
        timeout = float(timeout)
    started = time.monotonic()
    remaining: Optional[float] = None
    if timeout is not None:
        remaining = timeout - (started - received)
        if remaining <= 0:
            return _error_response(
                rid,
                "deadline",
                "deadline of %.3fs expired while queued" % timeout,
                session=sess.sid,
                wall_seconds=round(started - received, 6),
            )
    result = sess.session.check_sat(time_limit=remaining)
    elapsed = time.monotonic() - received
    if (
        timeout is not None
        and result.status == SESSION_UNKNOWN
        and elapsed >= timeout
    ):
        return _error_response(
            rid,
            "deadline",
            "deadline of %.3fs expired during check" % timeout,
            session=sess.sid,
            wall_seconds=round(elapsed, 6),
        )
    response: Dict[str, Any] = {
        "id": rid,
        "ok": True,
        "session": sess.sid,
        "status": result.status,
        "backend": result.backend,
        "depth": sess.session.depth,
        "wall_seconds": round(elapsed, 6),
    }
    if result.model is not None:
        response["model"] = interp_to_jsonable(result.model)
    if result.core is not None:
        response["core"] = [to_sexpr(f) for f in result.core]
    return response


def _session_op(
    state: _ServerState,
    sess: _ServeSession,
    payload: Dict[str, Any],
    received: float,
) -> Dict[str, Any]:
    """Execute one ordered session op; never raises."""
    rid = payload.get("id")
    kind = payload.get("kind")
    try:
        if sess.session.closed:
            return _error_response(
                rid,
                "unknown-session-id",
                "session %s is closed" % sess.sid,
            )
        if kind == "assert":
            formula_text = payload.get("formula")
            if not isinstance(formula_text, str) or not formula_text.strip():
                raise ValueError(
                    "'formula' must be a non-empty s-expression string"
                )
            index = sess.session.assert_formula(parse_formula(formula_text))
            return {
                "id": rid,
                "ok": True,
                "session": sess.sid,
                "index": index,
                "depth": sess.session.depth,
            }
        if kind == "push":
            depth = sess.session.push()
            return {"id": rid, "ok": True, "session": sess.sid, "depth": depth}
        if kind == "pop":
            levels = payload.get("levels", 1)
            if not isinstance(levels, int) or isinstance(levels, bool):
                raise ValueError("'levels' must be an integer")
            depth = sess.session.pop(levels)
            return {"id": rid, "ok": True, "session": sess.sid, "depth": depth}
        if kind == "check":
            return _session_check(state, sess, payload, received)
        # kind == "close" — the entry stays in the map (marked closed) so
        # ops already queued behind the close are still answered.
        checks = sess.session.stats.checks
        sess.session.close()
        return {"id": rid, "ok": True, "session": sess.sid, "checks": checks}
    except SessionError as exc:
        if kind == "pop":
            return _error_response(
                rid, "pop-below-zero", str(exc), session=sess.sid
            )
        return _error_response(
            rid, "unknown-session-id", str(exc), session=sess.sid
        )
    except ParseError as exc:
        return _error_response(rid, "parse", str(exc), session=sess.sid)
    except ValueError as exc:
        return _error_response(rid, "bad-request", str(exc), session=sess.sid)
    except Exception as exc:  # an op must never kill the session's turn
        return _error_response(
            rid,
            "internal",
            "%s: %s" % (type(exc).__name__, exc),
            session=sess.sid,
        )


def _session_turn(state: _ServerState, sid: str) -> None:
    """Drain one session's pending ops in arrival order."""
    with state.sessions_lock:
        sess = state.sessions.get(sid)
    if sess is None:  # pragma: no cover - sessions are never removed
        return
    while True:
        with sess.lock:
            if not sess.pending:
                sess.busy = False
                return
            payload, received = sess.pending.popleft()
        state.write(_session_op(state, sess, payload, received))
        state.bump("served")


def _worker(state: _ServerState) -> None:
    while True:
        try:
            payload, received = state.jobs.get(timeout=_TICK)
        except queue.Empty:
            if state.eof.is_set() or state.stop.is_set():
                return
            continue
        state.bump("in_flight")
        if "_session_turn" in payload:
            try:
                _session_turn(state, payload["_session_turn"])
            finally:
                state.bump("in_flight", -1)
                state.jobs.task_done()
            continue
        try:
            response = _solve_one(state, payload, received)
        except Exception as exc:  # pragma: no cover - belt and braces
            response = _error_response(
                payload.get("id"),
                "internal",
                "%s: %s" % (type(exc).__name__, exc),
            )
        state.write(response)
        state.bump("served")
        state.bump("in_flight", -1)
        state.jobs.task_done()


def run_server(
    config: Optional[ServeConfig] = None,
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
) -> int:
    """Serve line-delimited JSON requests until EOF or SIGTERM; returns 0.

    Emits a ``{"event": "ready"}`` line once the workers are up — clients
    should wait for it before sending — and a ``{"event": "bye"}`` line
    after the drain, with totals.
    """
    config = config or ServeConfig()
    inp = stdin if stdin is not None else sys.stdin
    out = stdout if stdout is not None else sys.stdout
    cache: Optional[ResultCache] = None
    if config.use_cache:
        cache = ResultCache(
            max_entries=config.cache_max_entries, disk_dir=config.cache_dir
        )
    state = _ServerState(
        config=config,
        out=out,
        cache=cache,
        jobs=queue.Queue(maxsize=max(1, config.queue_size)),
    )

    if config.install_signal_handlers:
        def _request_stop(signum: int, frame: Optional[Any]) -> None:  # pragma: no cover - signal path
            state.stop.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    workers = [
        threading.Thread(
            target=_worker, args=(state,), name="serve-worker-%d" % i
        )
        for i in range(max(1, config.workers))
    ]
    for thread in workers:
        thread.start()

    # ``ready`` goes out before the reader starts so it is always the
    # first line a client sees.
    state.write(
        {
            "event": "ready",
            "workers": len(workers),
            "queue_size": state.jobs.maxsize,
            "engine": config.engine,
            "cache": config.use_cache,
        }
    )
    reader = threading.Thread(
        target=_reader, args=(state, inp), name="serve-reader", daemon=True
    )
    reader.start()

    # Wait for either EOF (normal end of input) or a stop signal; then
    # drain: everything already accepted is still answered.
    while not (state.eof.is_set() or state.stop.is_set()):
        time.sleep(_TICK)
    state.jobs.join()
    state.stop.set()
    for thread in workers:
        thread.join()

    # Evict every session still open after the drain: all accepted ops
    # have been answered above, so closing here loses nothing.
    with state.sessions_lock:
        for sess in state.sessions.values():
            if not sess.session.closed:
                sess.session.close()
                state.sessions_evicted += 1
        state.sessions.clear()

    totals: Dict[str, Any] = {
        "event": "bye",
        "served": state.served,
        "rejected": state.rejected,
    }
    if state.sessions_opened:
        totals["sessions"] = {
            "opened": state.sessions_opened,
            "evicted": state.sessions_evicted,
        }
    if cache is not None:
        totals["cache"] = {
            "hits_memory": cache.stats.hits_memory,
            "hits_disk": cache.stats.hits_disk,
            "misses": cache.stats.misses,
            "stores": cache.stats.stores,
        }
    state.write(totals)
    return 0
