"""Request-level reuse on top of the engine layer.

The decision procedure is a validity oracle that real clients hammer
with thousands of closely related queries (predicate abstraction alone
issues huge batches of overlapping validity checks).  This package adds
the missing reuse layer:

* :mod:`repro.service.cache` — a canonicalization-keyed two-tier result
  cache (in-memory LRU + optional on-disk store) plus the ``cached``
  engine wrapper registered in :mod:`repro.engine.registry`;
* :mod:`repro.service.server` — the ``repro serve`` loop: line-delimited
  JSON requests over stdin/stdout with per-request deadlines, bounded
  queue backpressure and graceful drain on SIGTERM.

Isomorphic formulas share one cache entry by construction: keys are the
alpha-invariant canonical digests of :mod:`repro.logic.canonical`, and
countermodels are stored in canonical names and lifted back through each
requester's renaming map.
"""

from .cache import (
    CachedEngine,
    CacheEntry,
    ResultCache,
    config_fingerprint,
    interp_from_jsonable,
    interp_to_jsonable,
    solve_cached,
)
from .server import ServeConfig, run_server

__all__ = [
    "CachedEngine",
    "CacheEntry",
    "ResultCache",
    "config_fingerprint",
    "interp_from_jsonable",
    "interp_to_jsonable",
    "solve_cached",
    "ServeConfig",
    "run_server",
]
