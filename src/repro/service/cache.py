"""Canonicalization-keyed two-tier result cache.

The cache maps the *alpha-invariant canonical key* of a formula
(:func:`repro.logic.canonical.canonical_key`) to a decided verdict, so
every member of an isomorphism class shares one entry.  Entries are
scoped by a *configuration fingerprint* — engine name plus every
encoding knob that can change the verdict-relevant behaviour — so a
cache populated under one configuration self-invalidates under another
instead of serving stale answers.

Two tiers:

* an in-memory LRU (``max_entries``, default 4096) for the hot path;
* an optional on-disk store (``disk_dir``, conventionally
  ``results/cache/``) written atomically, one JSON file per
  (key, fingerprint) pair, surviving process restarts.  Disk hits are
  promoted into the memory tier.

Only ``VALID`` and ``INVALID`` verdicts are cached: they are theorems
about the formula and hold regardless of the resource limits of the run
that produced them.  ``UNKNOWN`` / limit outcomes depend on budgets and
are never stored.  Countermodels are stored in *canonical* names and
lifted back through each requester's renaming map
(:func:`repro.logic.canonical.lift_interpretation`), so a hit can serve
a countermodel for a formula the cache has never literally seen.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.result import CacheStats, DecisionStats, StageRecord
from ..core.status import Status
from ..engine.base import Engine, EngineCapabilities
from ..engine.contract import SolveRequest, SolveOutcome
from ..logic.canonical import (
    CANONICAL_VERSION,
    CanonicalForm,
    canonicalize,
    lift_interpretation,
)
from ..logic.semantics import Interpretation

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheEntry",
    "CachedEngine",
    "ResultCache",
    "config_fingerprint",
    "default_cache",
    "interp_from_jsonable",
    "interp_to_jsonable",
    "solve_cached",
]

#: Bump when the on-disk entry layout changes; stale files then miss on
#: fingerprint comparison instead of being misread.
CACHE_SCHEMA_VERSION = 1

#: Conventional location of the disk tier (relative to the cwd).
DEFAULT_CACHE_DIR = os.path.join("results", "cache")

#: Request options that never change a verdict (they select *how* the
#: cached wrapper itself behaves), excluded from the fingerprint.
_VOLATILE_OPTIONS = frozenset(
    {"engine", "cache_dir", "cache", "parallel", "deadline", "wait_all"}
)


def interp_to_jsonable(interp: Interpretation) -> Dict[str, Any]:
    """Flatten an :class:`Interpretation` to JSON-safe types.

    Function/predicate tables are keyed by argument *tuples*, which JSON
    cannot express; they become ``[args_list, value]`` pairs.
    """
    return {
        "vars": dict(interp.vars),
        "bools": dict(interp.bools),
        "funcs": {
            name: [[list(args), value] for args, value in sorted(table.items())]
            for name, table in interp.funcs.items()
        },
        "preds": {
            name: [[list(args), value] for args, value in sorted(table.items())]
            for name, table in interp.preds.items()
        },
        "func_default": interp.func_default,
        "pred_default": interp.pred_default,
    }


def interp_from_jsonable(data: Dict[str, Any]) -> Interpretation:
    """Inverse of :func:`interp_to_jsonable`."""
    return Interpretation(
        vars={name: int(value) for name, value in data.get("vars", {}).items()},
        bools={
            name: bool(value) for name, value in data.get("bools", {}).items()
        },
        funcs={
            name: {tuple(args): int(value) for args, value in pairs}
            for name, pairs in data.get("funcs", {}).items()
        },
        preds={
            name: {tuple(args): bool(value) for args, value in pairs}
            for name, pairs in data.get("preds", {}).items()
        },
        func_default=int(data.get("func_default", 0)),
        pred_default=bool(data.get("pred_default", False)),
    )


def config_fingerprint(engine_name: str, request: SolveRequest) -> str:
    """Digest of everything besides the formula that scopes a verdict.

    Two requests share a fingerprint exactly when a cached VALID/INVALID
    verdict for one is trustworthy for the other: same engine, same
    encoding knobs, same schema and canonicalization versions.  Resource
    limits (``time_limit`` / ``conflict_limit``) are deliberately *not*
    part of the fingerprint — only decided verdicts are stored, and a
    decided verdict is limit-independent.
    """
    options = {
        key: request.options[key]
        for key in sorted(request.options)
        if key not in _VOLATILE_OPTIONS
    }
    parts = [
        "cache-schema:%d" % CACHE_SCHEMA_VERSION,
        "canonical:%d" % CANONICAL_VERSION,
        "engine:%s" % engine_name,
        "sep_thold:%s" % request.sep_thold,
        "sd_ranges:%s" % request.sd_ranges,
        "trans_budget:%s" % request.trans_budget,
        "preprocess:%s" % request.preprocess,
        "options:%s" % json.dumps(options, sort_keys=True, default=repr),
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclass
class CacheEntry:
    """One cached verdict, countermodel in canonical names."""

    status: str
    countermodel: Optional[Interpretation] = None
    engine: str = ""

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "countermodel": (
                interp_to_jsonable(self.countermodel)
                if self.countermodel is not None
                else None
            ),
            "engine": self.engine,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "CacheEntry":
        model = data.get("countermodel")
        return cls(
            status=str(data["status"]),
            countermodel=(
                interp_from_jsonable(model) if model is not None else None
            ),
            engine=str(data.get("engine", "")),
        )


class ResultCache:
    """Thread-safe two-tier (memory LRU + optional disk) verdict store.

    ``lookup``/``store`` take both the canonical key and the
    configuration fingerprint; a disk file whose recorded fingerprint
    disagrees (schema bump, different engine build of the same name,
    changed encoding default) is treated as a miss, which is how stale
    entries self-invalidate without an explicit flush.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        disk_dir: Optional[str] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._memory: "OrderedDict[Tuple[str, str], CacheEntry]" = OrderedDict()
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and optionally the disk tier)."""
        with self._lock:
            self._memory.clear()
            if disk and self.disk_dir is not None and os.path.isdir(self.disk_dir):
                for name in os.listdir(self.disk_dir):
                    if name.endswith(".json"):
                        try:
                            os.unlink(os.path.join(self.disk_dir, name))
                        except OSError:
                            pass

    def _disk_path(self, key: str, fingerprint: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(
            self.disk_dir, "%s-%s.json" % (key[:40], fingerprint[:16])
        )

    def _usable(self, entry: CacheEntry, want_countermodel: bool) -> bool:
        # An INVALID verdict without a stored countermodel cannot satisfy
        # a caller who wants one — treat as a miss so the solver runs and
        # the richer entry replaces the thin one.
        if (
            want_countermodel
            and entry.status == str(Status.INVALID)
            and entry.countermodel is None
        ):
            return False
        return True

    def lookup(
        self,
        key: str,
        fingerprint: str,
        want_countermodel: bool = True,
    ) -> Tuple[Optional[CacheEntry], str]:
        """Return ``(entry, tier)``; tier is ``"memory"``/``"disk"``/``""``."""
        slot = (key, fingerprint)
        with self._lock:
            entry = self._memory.get(slot)
            if entry is not None and self._usable(entry, want_countermodel):
                self._memory.move_to_end(slot)
                self.stats.hits_memory += 1
                return entry, "memory"
            entry = self._disk_lookup(key, fingerprint)
            if entry is not None and self._usable(entry, want_countermodel):
                self._remember_locked(slot, entry)
                self.stats.hits_disk += 1
                return entry, "disk"
            self.stats.misses += 1
            return None, ""

    def _disk_lookup(
        self, key: str, fingerprint: str
    ) -> Optional[CacheEntry]:
        if self.disk_dir is None:
            return None
        path = self._disk_path(key, fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            data.get("schema") != CACHE_SCHEMA_VERSION
            or data.get("key") != key
            or data.get("fingerprint") != fingerprint
        ):
            return None
        try:
            return CacheEntry.from_jsonable(data["entry"])
        except (KeyError, TypeError, ValueError):
            return None

    def _remember_locked(
        self, slot: Tuple[str, str], entry: CacheEntry
    ) -> None:
        """Insert into the memory LRU; caller must hold ``self._lock``
        (the ``_locked`` suffix is the convention rule RC101 honours)."""
        self._memory[slot] = entry
        self._memory.move_to_end(slot)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def note_dedupes(self, count: int = 1) -> None:
        """Thread-safely count batch dedupes against this cache's stats."""
        with self._lock:
            self.stats.dedupes += count

    def store(self, key: str, fingerprint: str, entry: CacheEntry) -> bool:
        """Record a decided verdict; refuses undecided statuses."""
        if entry.status not in (str(Status.VALID), str(Status.INVALID)):
            return False
        with self._lock:
            self._remember_locked((key, fingerprint), entry)
            self.stats.stores += 1
            if self.disk_dir is not None:
                self._disk_store(key, fingerprint, entry)
            return True

    def _disk_store(
        self, key: str, fingerprint: str, entry: CacheEntry
    ) -> None:
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "fingerprint": fingerprint,
            "entry": entry.to_jsonable(),
        }
        path = self._disk_path(key, fingerprint)
        try:
            fd, tmp_path = tempfile.mkstemp(
                prefix=".cache-", suffix=".tmp", dir=self.disk_dir
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # The disk tier is best-effort: a full or read-only disk must
            # not fail the solve.
            pass


def solve_cached(
    request: SolveRequest,
    solver: Callable[[SolveRequest], SolveOutcome],
    cache: ResultCache,
    fingerprint: str,
    engine_label: str = "cached",
) -> SolveOutcome:
    """Canonicalize, look up, solve on miss, store, lift the countermodel.

    ``solver`` is called with the request rebased onto the *canonical*
    representative, so any countermodel it returns is already in
    canonical names and can be stored directly; the outcome handed back
    to the caller is always translated to the original vocabulary.
    """
    start = time.perf_counter()
    form = canonicalize(request.formula)
    local = CacheStats()
    entry, tier = cache.lookup(
        form.key, fingerprint, want_countermodel=request.want_countermodel
    )
    if entry is not None:
        if tier == "memory":
            local.hits_memory += 1
        else:
            local.hits_disk += 1
        seconds = time.perf_counter() - start
        stats = DecisionStats(method=engine_label)
        stats.cache = local
        stats.stages.append(
            StageRecord(
                name="cache",
                seconds=seconds,
                counters={
                    "hit": 1,
                    "hit_memory": local.hits_memory,
                    "hit_disk": local.hits_disk,
                },
            )
        )
        countermodel = None
        if entry.countermodel is not None and request.want_countermodel:
            countermodel = lift_interpretation(entry.countermodel, form)
        return SolveOutcome(
            engine=engine_label,
            status=Status(entry.status),
            stats=stats,
            counterexample=countermodel,
            detail="cache hit (%s tier, solved by %s)" % (tier, entry.engine),
            wall_seconds=seconds,
            winner=entry.engine or None,
        )

    local.misses += 1
    lookup_seconds = time.perf_counter() - start
    outcome = solver(request.replace_formula(form.formula))
    solved_by = outcome.winner or outcome.engine
    if outcome.status in (Status.VALID, Status.INVALID):
        stored = cache.store(
            form.key,
            fingerprint,
            CacheEntry(
                status=str(outcome.status),
                countermodel=outcome.counterexample,
                engine=solved_by,
            ),
        )
        if stored:
            local.stores += 1
    if outcome.counterexample is not None:
        outcome.counterexample = lift_interpretation(
            outcome.counterexample, form
        )
    if outcome.stats.cache is None:
        outcome.stats.cache = local
    else:
        outcome.stats.cache.merge(local)
    outcome.stats.stages.append(
        StageRecord(
            name="cache",
            seconds=lookup_seconds,
            counters={"miss": 1, "store": local.stores},
        )
    )
    outcome.engine = engine_label
    outcome.winner = solved_by or None
    outcome.wall_seconds = time.perf_counter() - start
    return outcome


_default_caches: Dict[Optional[str], ResultCache] = {}
_default_caches_lock = threading.Lock()


def default_cache(disk_dir: Optional[str] = None) -> ResultCache:
    """Process-wide shared cache, one per disk directory (``None`` =
    memory-only)."""
    with _default_caches_lock:
        cache = _default_caches.get(disk_dir)
        if cache is None:
            cache = ResultCache(disk_dir=disk_dir)
            _default_caches[disk_dir] = cache
        return cache


class CachedEngine(Engine):
    """Registry wrapper adding the result cache in front of any engine.

    ``options["engine"]`` picks the inner engine (default ``hybrid``);
    ``options["cache_dir"]`` enables the disk tier at that path.  The
    wrapper advertises the union capabilities of the default inner
    engine; it is excluded from the default portfolio roster (a cache in
    a race adds nothing but a second canonicalization).
    """

    name = "cached"
    capabilities = EngineCapabilities(
        description="canonicalization-keyed result cache over an inner "
        "engine (options: engine=<name>, cache_dir=<path>)",
        complete=True,
        countermodels=True,
        time_limit=True,
        preprocessing=True,
    )

    DEFAULT_INNER = "hybrid"

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self._cache = cache

    def _resolve_cache(self, request: SolveRequest) -> ResultCache:
        if self._cache is not None:
            return self._cache
        disk_dir = request.options.get("cache_dir") or os.environ.get(
            "REPRO_CACHE_DIR"
        )
        return default_cache(disk_dir)

    def solve(self, request: SolveRequest) -> SolveOutcome:
        from ..engine import registry

        inner_name = request.options.get("engine", self.DEFAULT_INNER)
        inner = registry.get(inner_name)
        cache = self._resolve_cache(request)
        fingerprint = config_fingerprint(inner_name, request)
        return solve_cached(
            request,
            inner.solve,
            cache,
            fingerprint,
            engine_label=self.name,
        )
