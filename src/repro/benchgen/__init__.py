"""Synthetic benchmark families standing in for the paper's 49 formulas."""

from .base import Benchmark, BenchmarkFactory
from .cache import make_cache
from .driver import make_driver
from .invariant import make_invariant
from .loadstore import make_loadstore
from .ooo import make_ooo
from .pipeline import make_pipeline
from .suite import (
    DOMAINS,
    benchmark_by_name,
    invalid_suite,
    invariant_suite,
    non_invariant_suite,
    sample16,
    suite,
)
from .transval import make_transval

__all__ = [
    "Benchmark",
    "BenchmarkFactory",
    "make_cache",
    "make_driver",
    "make_invariant",
    "make_loadstore",
    "make_ooo",
    "make_pipeline",
    "make_transval",
    "DOMAINS",
    "benchmark_by_name",
    "invalid_suite",
    "invariant_suite",
    "non_invariant_suite",
    "sample16",
    "suite",
]
