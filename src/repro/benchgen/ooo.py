"""Out-of-order-processor benchmarks (UCLID FMCAD'02 flavoured).

Reorder-buffer reasoning: instruction tags are allocated in program order,
so from per-step allocation hypotheses (each tag is the successor of, or
strictly later than, the previous one) the generator concludes global
ordering and distinctness facts, together with functional-consistency
obligations on tag-indexed lookups (``instr_of``, ``dest_of``).

Profile: a moderate number of inequalities over one connected tag class
plus uninterpreted functions applied to the tags — between the
pipeline-style (equality-only) and invariant-checking (inequality-dense)
regimes.  ``valid=False`` asserts an ordering conclusion that the
hypotheses do not imply (reversed comparison on the last pair).
"""

from __future__ import annotations

from ..logic import builders as b
from .base import Benchmark, BenchmarkFactory

__all__ = ["make_ooo"]


def make_ooo(
    tags: int = 4,
    seed: int = 0,
    valid: bool = True,
    name: str = "",
) -> Benchmark:
    """Out-of-order tag-ordering benchmark over ``tags`` in-flight tags."""
    factory = BenchmarkFactory(seed)
    rng = factory.rng
    instr_of = b.func("instr_of")
    dest_of = b.func("dest_of")

    ts = [b.const(factory.fresh("t")) for _ in range(tags)]

    # Allocation hypotheses: t[i+1] = t[i] + 1 or t[i] < t[i+1].
    hyps = []
    for i in range(tags - 1):
        if rng.random() < 0.5:
            hyps.append(b.eq(ts[i + 1], b.succ(ts[i])))
        else:
            hyps.append(b.lt(ts[i], ts[i + 1]))

    # Conclusions: global order, head/tail distance, and the full set of
    # pairwise orderings (what a reorder-buffer ordering proof discharges).
    concl = [b.lt(ts[0], ts[-1])]
    concl.append(b.le(b.succ(ts[0]), ts[-1]))
    for i in range(tags):
        for j in range(i + 1, tags):
            concl.append(b.lt(ts[i], ts[j]))

    # Tag-indexed lookups: if two tag expressions coincide, the lookups do.
    u, v = b.const("u"), b.const("v")
    concl.append(
        b.implies(
            b.eq(u, v),
            b.eq(instr_of(u), instr_of(v)),
        )
    )
    concl.append(
        b.implies(
            b.band(b.eq(dest_of(u), dest_of(v)), b.eq(u, ts[0])),
            b.eq(dest_of(ts[0]), dest_of(v)),
        )
    )

    if not valid:
        # Claims the window is strictly tighter than allocation guarantees.
        concl.append(b.lt(ts[-1], b.offset(ts[0], tags - 1)))

    formula = b.implies(b.band(*hyps), b.band(*concl))
    return Benchmark(
        name=name or "ooo_t%d_%d" % (tags, seed),
        domain="ooo",
        formula=formula,
        expected_valid=valid,
        params={"tags": tags, "seed": seed},
    )
