"""DLX-style pipeline correctness benchmarks (Burch–Dill flavoured).

The generated obligation compares two formulations of a forwarding
(bypass) network feeding an ALU:

* the *implementation* resolves the youngest in-flight writeback first::

      impl(src) = ITE(src = d1, w1, ITE(src = d2, w2, ... regfile(src)))

* the *specification* resolves the same network with the priority test
  made explicit (check ``dk`` only when no younger ``di`` matched)::

      spec(src) = ITE(src = dn and not(src = d(n-1)) and ..., wn, ...)

The two are semantically identical, so::

    alu(op, impl(srcA), impl(srcB)) = alu(op, spec(srcA), spec(srcB))

is valid.  The formula is EUF-heavy with the top-level data equality in
*positive* position — the regime where positive equality makes almost every
function application a p-function, the paper's DLX/processor benchmarks.

``valid=False`` drops one priority guard in the specification, which makes
the networks genuinely different when two destinations collide.
"""

from __future__ import annotations

from ..logic import builders as b
from ..logic.terms import Formula, Term
from .base import Benchmark, BenchmarkFactory

__all__ = ["make_pipeline"]


def _bypass_impl(src: Term, dests, values, regfile) -> Term:
    """Youngest-first nested-ITE bypass network."""
    result = regfile(src)
    for dest, value in reversed(list(zip(dests, values))):
        result = b.ite(b.eq(src, dest), value, result)
    return result


def _bypass_spec(src: Term, dests, values, regfile, mutate: bool) -> Term:
    """Priority-explicit network: stage ``i`` fires only when no younger
    stage ``j < i`` matched.  With ``mutate=True`` the stage priority is
    reversed *without* adjusting the guards, which disagrees with the
    implementation whenever two destinations collide on ``src``."""
    if mutate:
        # Oldest-first *without* priority guards: picks the oldest matching
        # stage, the implementation picks the youngest — a real bypass bug.
        result = regfile(src)
        for i, (dest, value) in enumerate(zip(dests, values)):
            result = b.ite(b.eq(src, dest), value, result)
        return result
    result = regfile(src)
    for i in reversed(range(len(dests))):
        guards = [b.eq(src, dests[i])]
        for j in range(i):
            guards.append(b.bnot(b.eq(src, dests[j])))
        result = b.ite(b.band(*guards), values[i], result)
    return result


def make_pipeline(
    stages: int = 3,
    reads: int = 2,
    seed: int = 0,
    valid: bool = True,
    name: str = "",
) -> Benchmark:
    """Pipeline forwarding-correctness benchmark.

    Parameters
    ----------
    stages:
        Number of in-flight writeback stages in the bypass network.
    reads:
        Number of source operands read through the network.
    """
    factory = BenchmarkFactory(seed)
    regfile = b.func("regfile")
    alu = b.func("alu")

    dests = [b.const(factory.fresh("d")) for _ in range(stages)]
    values = [b.const(factory.fresh("w")) for _ in range(stages)]
    sources = [b.const(factory.fresh("src")) for _ in range(reads)]

    impl_ops = [
        _bypass_impl(src, dests, values, regfile) for src in sources
    ]
    spec_ops = [
        _bypass_spec(src, dests, values, regfile, mutate=not valid)
        for src in sources
    ]

    conclusion = b.eq(alu(*impl_ops), alu(*spec_ops))
    formula = conclusion

    return Benchmark(
        name=name or "pipeline_s%d_r%d_%d" % (stages, reads, seed),
        domain="pipeline",
        formula=formula,
        expected_valid=valid,
        params={"stages": stages, "reads": reads, "seed": seed},
    )
