"""Cache-coherence protocol benchmarks (parameterised-protocol flavoured).

A MESI-like protocol over ``caches`` agents is modelled with one state
constant per agent (values compared against the four symbolic state
designators ``M``, ``E``, ``S``, ``I``) plus an address tag per agent.  The
obligation is one induction step of the safety proof::

    Inv(s)  and  step  =>  Inv(s')

where ``Inv`` says *no two agents hold the same address exclusively* and
the step is a disjunction of transition cases (read-share, invalidate-then
-claim, silent drop).  This yields the disjunctive, equality-dominated
shape of protocol queries.  ``valid=False`` omits the invalidation in the
exclusive-claim transition, the classic coherence bug.
"""

from __future__ import annotations

from typing import List

from ..logic import builders as b
from ..logic.terms import Formula
from .base import Benchmark, BenchmarkFactory

__all__ = ["make_cache"]


def make_cache(
    caches: int = 3,
    seed: int = 0,
    valid: bool = True,
    name: str = "",
) -> Benchmark:
    """One induction step of a MESI-style mutual-exclusion proof."""
    factory = BenchmarkFactory(seed)

    # State designators: pairwise-distinct symbolic constants.
    m_state, e_state, s_state, i_state = (
        b.const("Mst"),
        b.const("Est"),
        b.const("Sst"),
        b.const("Ist"),
    )
    designators = [m_state, e_state, s_state, i_state]
    distinct = b.distinct(designators)

    pre = [b.const(factory.fresh("st")) for _ in range(caches)]
    addr = [b.const(factory.fresh("ad")) for _ in range(caches)]
    req_addr = b.const("reqa")
    requester = 0  # agent 0 performs the transition

    def exclusive(state) -> Formula:
        return b.bor(b.eq(state, m_state), b.eq(state, e_state))

    def inv(states) -> Formula:
        parts: List[Formula] = []
        for i in range(caches):
            for j in range(caches):
                if i == j:
                    continue
                parts.append(
                    b.implies(
                        b.band(
                            exclusive(states[i]),
                            b.eq(addr[i], addr[j]),
                        ),
                        b.eq(states[j], i_state),
                    )
                )
        return b.band(*parts)

    # Transition cases for agent 0 on address req_addr = addr[0].
    # Case A (read-share): requester moves to S; any exclusive holder of
    # the same address is downgraded to S as well... which would break the
    # exclusivity invariant — so Inv' only needs the *exclusive* clauses,
    # and S-S sharing is fine.
    post_share = [
        b.ite(
            b.band(b.eq(addr[k], addr[requester]), exclusive(pre[k])),
            s_state,
            pre[k],
        )
        if k != requester
        else s_state
        for k in range(caches)
    ]
    # Case B (exclusive claim): requester takes M; every other agent on the
    # same address is invalidated (the mutation forgets this).
    post_claim = []
    for k in range(caches):
        if k == requester:
            post_claim.append(m_state)
        elif valid:
            post_claim.append(
                b.ite(
                    b.eq(addr[k], addr[requester]),
                    i_state,
                    pre[k],
                )
            )
        else:
            post_claim.append(pre[k])  # BUG: stale copies survive
    # Case C (silent drop): requester invalidates its own line.
    post_drop = [
        i_state if k == requester else pre[k] for k in range(caches)
    ]

    step_cases = [
        (post_share, "share"),
        (post_claim, "claim"),
        (post_drop, "drop"),
    ]
    obligations = [
        b.implies(
            b.band(distinct, inv(pre), b.eq(req_addr, addr[requester])),
            inv(post),
        )
        for post, _ in step_cases
    ]
    formula = b.band(*obligations)

    return Benchmark(
        name=name or "cache_c%d_%d" % (caches, seed),
        domain="cache",
        formula=formula,
        expected_valid=valid,
        params={"caches": caches, "seed": seed},
    )
