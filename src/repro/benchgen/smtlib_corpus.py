"""Emit the synthetic suite as a ``:status``-annotated SMT-LIB 2 corpus.

Self-hosting bridge between the generated benchmark families and the
``repro compete`` runner: each selected suite benchmark is serialized
with :func:`repro.logic.smtlib.to_smtlib_script` (asserting the
*negation*, so a valid formula's script is ``unsat``) together with its
invalid mutant (``sat``), each carrying the standard
``(set-info :status ...)`` annotation the scorer checks verdicts
against.  The emitted directory doubles as a mutation corpus for
``repro fuzz --corpus``.

Everything is deterministic: same suite, same parameters, same bytes.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..logic.smtlib import to_smtlib_script
from .base import Benchmark
from .suite import suite

__all__ = ["default_corpus", "emit_corpus"]

#: Suite indices of the smallest benchmark per non-invariant family —
#: small enough that every engine method decides them well inside the
#: smoke budget (the invariant family is deliberately excluded: it is
#: constructed so EIJ — and HYBRID at the default threshold — time out).
_SMOKE_NAMES = (
    "pipeline_s2_r2_1",
    "loadstore_e3_p6_1",
    "ooo_t4_1",
    "cache_c2_1",
    "driver_s3_1",
    "transval_s1_i3_1",
)


def default_corpus(count: Optional[int] = None) -> List[Benchmark]:
    """The self-hosted corpus: per-family smallest benchmarks, both
    polarities (the valid formula and its invalid mutant)."""
    valid = {bench.name: bench for bench in suite(valid=True)}
    invalid = {bench.name: bench for bench in suite(valid=False)}
    names = list(_SMOKE_NAMES)
    missing = [name for name in names if name not in valid]
    if missing:
        raise ValueError(
            "smoke corpus names drifted from the suite: %s"
            % ", ".join(missing)
        )
    if count is not None:
        names = names[:count]
    out: List[Benchmark] = []
    for name in names:
        out.append(valid[name])
        out.append(invalid[name])
    return out


def emit_corpus(
    out_dir: str, count: Optional[int] = None
) -> List[Tuple[str, str]]:
    """Write the corpus into ``out_dir``; returns ``(path, status)``.

    A *valid* benchmark's script asserts the negation, so its expected
    ``check-sat`` answer — and emitted ``:status`` — is ``unsat``; the
    invalid mutants are ``sat``.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: List[Tuple[str, str]] = []
    for bench in default_corpus(count):
        status = "unsat" if bench.expected_valid else "sat"
        stem = "%s_%s" % (
            bench.name,
            "valid" if bench.expected_valid else "invalid",
        )
        path = os.path.join(out_dir, stem + ".smt2")
        script = to_smtlib_script(
            bench.formula,
            status=status,
            comments=[
                "benchgen self-hosted corpus: %s (domain %s, %d DAG "
                "nodes, expected_valid=%s)"
                % (
                    bench.name,
                    bench.domain,
                    bench.dag_size,
                    bench.expected_valid,
                ),
                "regenerate: repro compete --emit-benchgen <dir>",
            ],
        )
        with open(path, "w") as fp:
            fp.write(script)
        written.append((path, status))
    return written
