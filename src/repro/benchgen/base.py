"""Common infrastructure for the synthetic benchmark families.

The paper evaluates on 49 formulas drawn from industrial verification runs
(load-store unit, out-of-order processor, cache coherence, DLX pipeline,
device drivers, translation validation).  Those formulas are proprietary;
each module in this package generates structurally analogous *valid*
formulas — plus invalid mutants for testing — with the qualitative features
the paper reports for its domain (see DESIGN.md §3/§4).

Every generator is deterministic in its ``(size, seed)`` parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..logic.terms import Formula
from ..logic.traversal import dag_size

__all__ = ["Benchmark", "BenchmarkFactory"]


@dataclass
class Benchmark:
    """One generated benchmark formula with its provenance."""

    name: str
    domain: str
    formula: Formula
    expected_valid: bool
    invariant_checking: bool = False
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def dag_size(self) -> int:
        return dag_size(self.formula)

    @property
    def canonical_key(self) -> str:
        """Alpha-invariant, process-stable identity of the formula.

        The single shared keying helper
        (:func:`repro.logic.canonical.canonical_key`) — the same digest
        the result cache and batch dedupe use, so a benchmark's identity
        in reports lines up with its cache entry.
        """
        from ..logic.canonical import canonical_key

        return canonical_key(self.formula)

    def __repr__(self) -> str:
        return "Benchmark(%s, domain=%s, nodes=%d, valid=%s)" % (
            self.name,
            self.domain,
            self.dag_size,
            self.expected_valid,
        )


class BenchmarkFactory:
    """Helper carrying a seeded RNG and fresh-name counters."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self._counters: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        n = self._counters.get(prefix, 0)
        self._counters[prefix] = n + 1
        return "%s%d" % (prefix, n)

    def shuffle(self, items):
        items = list(items)
        self.rng.shuffle(items)
        return items
