"""Translation-validation benchmarks (Code Validation Tool flavoured).

A compiler pass is validated by proving that source and target expression
DAGs compute the same value given equal inputs.  The generator builds a
random source DAG bottom-up over uninterpreted operators (``size`` combine
steps: binary ops, conditional selections, offset adjustments), applies
semantics-preserving rewrites to produce the "target" (input renaming, ITE
branch-swap with negated condition, offset refolding), and emits::

    (inputs equal)  =>  (source = target)

Equality-dense and p-function-heavy — the code-validation profile of the
paper's software benchmarks.  ``valid=False`` swaps the branches of the
outermost conditional without negating its condition — a real
miscompilation, falsifiable because the two arms use different operator
symbols.
"""

from __future__ import annotations

from typing import Dict, List

from ..logic import builders as b
from ..logic.terms import Eq, FuncApp, Ite, Offset, Term, Var
from .base import Benchmark, BenchmarkFactory

__all__ = ["make_transval"]


def _build_dag(factory: BenchmarkFactory, inputs: List[Term], ops, size: int):
    """Bottom-up random DAG: each step combines earlier nodes."""
    rng = factory.rng
    pool: List[Term] = list(inputs)
    for step in range(size):
        choice = rng.random()
        lhs = rng.choice(pool)
        rhs = rng.choice(pool)
        if choice < 0.85:
            node = rng.choice(ops)(lhs, rhs)
        else:
            third = rng.choice(pool)
            node = b.ite(b.eq(lhs, rhs), third, rng.choice(pool))
        pool.append(node)
    # Combine the last couple of roots so the whole DAG is reachable.
    result = pool[-1]
    for node in pool[-3:-1]:
        result = ops[0](result, node)
    return result


def _translate(term: Term, mapping: Dict[Term, Term], mutate: bool) -> Term:
    """Rebuild ``term`` over target inputs (branch-swap rewrite on ITEs).

    With ``mutate=True``, the *outermost* ITE swaps its branches without
    negating the condition — a real miscompilation that disagrees whenever
    the condition holds and the branches differ."""
    state = {"mutated": not mutate}
    memo: Dict[Term, Term] = {}

    def walk(t: Term) -> Term:
        cached = memo.get(t)
        if cached is not None:
            return cached
        if isinstance(t, Var):
            out = mapping[t]
        elif isinstance(t, Offset):
            out = b.offset(walk(t.base), t.k)
        elif isinstance(t, FuncApp):
            out = FuncApp(t.symbol, [walk(a) for a in t.args])
        elif isinstance(t, Ite):
            cond = t.cond
            if not isinstance(cond, Eq):
                raise TypeError("unexpected condition kind in transval")
            new_cond = Eq(walk(cond.lhs), walk(cond.rhs))
            if not state["mutated"]:
                state["mutated"] = True
                out = b.ite(new_cond, walk(t.els), walk(t.then))
            else:
                # Swap the branches and negate the condition: legal.
                out = b.ite(b.bnot(new_cond), walk(t.els), walk(t.then))
        else:
            raise TypeError("unexpected term kind: %r" % (type(t),))
        memo[t] = out
        return out

    return walk(term)


def make_transval(
    size: int = 30,
    inputs: int = 4,
    seed: int = 0,
    valid: bool = True,
    name: str = "",
) -> Benchmark:
    """Source/target equivalence obligation for a random expression DAG.

    ``size`` is the number of DAG-construction steps (roughly proportional
    to the obligation's node count; the dense equality web it produces is
    what makes these formulas hard at surprisingly small sizes).
    """
    factory = BenchmarkFactory(seed)
    ops = [b.func("op%d" % i) for i in range(3)]

    src_inputs = [b.const(factory.fresh("xs")) for _ in range(inputs)]
    tgt_inputs = [b.const(factory.fresh("xt")) for _ in range(inputs)]
    mapping = dict(zip(src_inputs, tgt_inputs))

    body = _build_dag(factory, src_inputs, ops, size)
    # A guaranteed-distinguishable conditional on top: the two arms use
    # different operator symbols, so a mutated translation is falsifiable.
    source = b.ite(
        b.eq(src_inputs[0], src_inputs[1]),
        ops[0](body, src_inputs[0]),
        ops[1](body, src_inputs[1]),
    )
    target = _translate(source, mapping, mutate=not valid)

    input_eqs = [b.eq(s, t) for s, t in mapping.items()]
    formula = b.implies(b.band(*input_eqs), b.eq(source, target))

    return Benchmark(
        name=name or "transval_s%d_i%d_%d" % (size, inputs, seed),
        domain="transval",
        formula=formula,
        expected_valid=valid,
        params={"size": size, "inputs": inputs, "seed": seed},
    )
