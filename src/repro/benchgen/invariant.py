"""Invariant-checking benchmarks — the family where SD must win (Fig. 5).

The paper's invariant-checking formulas (out-of-order processor / ordered
queue invariants) are characterised by *many inequalities*, a *very large
number of uninterpreted function applications almost none of which are
p-functions*, and a *small number of large symbolic-constant classes* —
which makes EIJ's transitivity constraints explode while the small-domain
method stays polynomial.

The generated obligation is a gap-sortedness invariant step over ``cells``
queue cells with *varied* gap constants::

    hyps:   a_i + d_i <= a_{i+1}          (d_i in 1..4, per-step gaps)
            rank(a_i) + r_i <= rank(a_{i+1})
            a_i <= a_{i+2} + e_i          (redundant cross window facts)
            a_0 <= rank(a_0)
    concl:  a_i < a_j  for i < j,  a_0 + sum(d) <= a_n,
            rank(a_0) < rank(a_n)

The varied constants are what kill the per-constraint method: derived
transitivity bounds accumulate *distinct* path-sum constants on every
chord, so the constraint count grows combinatorially in ``cells`` even
though the class's SepCnt stays modest — precisely the paper's remark that
"even if the original number of separation predicates in each class is
relatively low, the number of symbolic constants involved in those
predicates is large, and this leads to a large number of transitivity
constraints".  Every inequality sits in the antecedent or a strict
conclusion, so nothing is a p-function application.

``valid=False`` claims the final gap is strict (``a_n < a_0 + sum(d)``
reversed), which the all-tight model falsifies.
"""

from __future__ import annotations

from ..logic import builders as b
from .base import Benchmark, BenchmarkFactory

__all__ = ["make_invariant"]


def make_invariant(
    cells: int = 5,
    seed: int = 0,
    valid: bool = True,
    name: str = "",
) -> Benchmark:
    """Gap-sortedness invariant obligation over ``cells`` queue cells."""
    factory = BenchmarkFactory(seed)
    rng = factory.rng
    rank = b.func("rank")

    cell = [b.const(factory.fresh("a")) for _ in range(cells)]

    hyps = []
    gaps = []
    for i in range(cells - 1):
        # Deterministically diverse gaps: distinct path sums are what make
        # the per-constraint translation explode.
        d = (i + seed) % 5 + 1
        gaps.append(d)
        # a_i + d <= a_{i+1}   (written with the offset on the right)
        hyps.append(b.le(cell[i], b.offset(cell[i + 1], -d)))
    # A short chain of rank facts ties the (general) rank constants into
    # the same class without inflating the predicate count: the paper
    # notes the invariant formulas keep SepCnt *low* while the class is
    # large, which is exactly why the threshold heuristic picks EIJ and
    # loses.
    rank_links = min(cells - 1, 3)
    for i in range(rank_links):
        hyps.append(
            b.le(rank(cell[i]), b.offset(rank(cell[i + 1]), -rng.randint(1, 3)))
        )
    # Redundant window facts add chords to the constraint graph.
    for i in range(cells - 2):
        hyps.append(b.le(cell[i], b.offset(cell[i + 2], (i + seed) % 4)))
    for i in range(cells - 3):
        hyps.append(b.le(cell[i], b.offset(cell[i + 3], (2 * i + seed) % 5)))
    # Tie the rank values into the same class as the cells.
    hyps.append(b.le(cell[0], rank(cell[0])))

    total = sum(gaps)
    concl = [
        b.lt(cell[0], cell[-1]),
        b.le(cell[0], b.offset(cell[-1], -total)),
        b.lt(rank(cell[0]), rank(cell[rank_links])),
    ]
    if cells >= 4:
        mid = cells // 2
        concl.append(b.lt(cell[0], cell[mid]))
        concl.append(b.lt(cell[mid], cell[-1]))
    if not valid:
        # Claims the chain overshoots its guaranteed total gap; the
        # all-tight model (every hypothesis an equality) falsifies it.
        concl.append(b.lt(b.offset(cell[0], total), cell[-1]))

    formula = b.implies(b.band(*hyps), b.band(*concl))
    return Benchmark(
        name=name or "invariant_n%d_%d" % (cells, seed),
        domain="invariant",
        formula=formula,
        expected_valid=valid,
        invariant_checking=True,
        params={"cells": cells, "seed": seed},
    )
