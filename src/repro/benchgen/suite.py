"""The 49-formula benchmark suite and the 16-formula sample.

Mirrors the paper's evaluation setup: 49 valid formulas drawn from both
hardware and software verification domains, of which 10 are
invariant-checking formulas (the family where SD dominates, Figure 5) and
39 are not (Figures 4 and 6).  A 16-formula sample — at least one per
domain — drives the Figure-3 feature study and the SEP_THOLD selection.

Size calibration
----------------
The paper's formulas span 100–7500 DAG nodes and were decided by compiled
ML + zChaff under a 30-minute budget.  This reproduction's stack is pure
Python (roughly two to three orders of magnitude slower per propagation),
so the suite is scaled to 25–800 DAG nodes and a default budget of tens of
seconds — chosen so that the *relative* behaviour matches the paper:

* equality-dominated formulas (pipeline, cache, transval, loadstore) are
  decided quickly by EIJ, while SD's bit-level search lags and times out
  on the larger cache/transval entries;
* the offset-rich families (ooo, driver) are fine under EIJ while small
  but hit the transitivity-translation explosion at larger sizes — at
  which point their per-class SepCnt exceeds the calibrated threshold, so
  HYBRID switches those classes to SD and still completes;
* the invariant-checking family keeps SepCnt *low* (the paper: "even if
  the original number of separation predicates in each class is
  relatively low ... this leads to a large number of transitivity
  constraints"), so EIJ — and HYBRID at the default threshold — fail on
  all of them while SD finishes in seconds.

All benchmarks are deterministic; ``suite()`` and ``sample16()`` always
return the same formulas.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Benchmark
from .cache import make_cache
from .driver import make_driver
from .invariant import make_invariant
from .loadstore import make_loadstore
from .ooo import make_ooo
from .pipeline import make_pipeline
from .transval import make_transval

__all__ = [
    "suite",
    "non_invariant_suite",
    "invariant_suite",
    "sample16",
    "benchmark_by_name",
    "invalid_suite",
    "DOMAINS",
]

DOMAINS = (
    "pipeline",
    "loadstore",
    "ooo",
    "cache",
    "driver",
    "transval",
    "invariant",
)

# (factory, kwargs) — 39 non-invariant benchmarks.
_NON_INVARIANT = [
    (make_pipeline, dict(stages=2, reads=2, seed=1)),
    (make_pipeline, dict(stages=3, reads=2, seed=2)),
    (make_pipeline, dict(stages=4, reads=2, seed=3)),
    (make_pipeline, dict(stages=5, reads=2, seed=4)),
    (make_pipeline, dict(stages=4, reads=3, seed=5)),
    (make_pipeline, dict(stages=6, reads=2, seed=6)),
    (make_pipeline, dict(stages=8, reads=2, seed=7)),
    (make_loadstore, dict(entries=3, pointers=6, seed=1)),
    (make_loadstore, dict(entries=5, pointers=10, seed=2)),
    (make_loadstore, dict(entries=7, pointers=14, seed=3)),
    (make_loadstore, dict(entries=9, pointers=18, seed=4)),
    (make_loadstore, dict(entries=12, pointers=24, seed=5)),
    (make_loadstore, dict(entries=15, pointers=30, seed=6)),
    (make_ooo, dict(tags=4, seed=1)),
    (make_ooo, dict(tags=5, seed=2)),
    (make_ooo, dict(tags=6, seed=3)),
    (make_ooo, dict(tags=8, seed=4)),
    (make_ooo, dict(tags=15, seed=5)),
    (make_ooo, dict(tags=15, seed=6)),
    (make_ooo, dict(tags=16, seed=7)),
    (make_cache, dict(caches=2, seed=1)),
    (make_cache, dict(caches=3, seed=2)),
    (make_cache, dict(caches=4, seed=3)),
    (make_cache, dict(caches=5, seed=4)),
    (make_cache, dict(caches=6, seed=5)),
    (make_cache, dict(caches=7, seed=6)),
    (make_driver, dict(steps=3, seed=1)),
    (make_driver, dict(steps=4, seed=2)),
    (make_driver, dict(steps=5, seed=3)),
    (make_driver, dict(steps=6, seed=4)),
    (make_driver, dict(steps=12, seed=5)),
    (make_driver, dict(steps=16, seed=6)),
    (make_driver, dict(steps=20, seed=7)),
    (make_transval, dict(size=1, inputs=3, seed=1)),
    (make_transval, dict(size=2, inputs=4, seed=2)),
    (make_transval, dict(size=3, inputs=4, seed=3)),
    (make_transval, dict(size=3, inputs=5, seed=4)),
    (make_transval, dict(size=4, inputs=4, seed=5)),
    (make_transval, dict(size=5, inputs=4, seed=6)),
]

# 10 invariant-checking benchmarks (cells sized so the per-constraint
# translation fails on every one while SD completes).
_INVARIANT = [
    (make_invariant, dict(cells=10, seed=1)),
    (make_invariant, dict(cells=11, seed=2)),
    (make_invariant, dict(cells=12, seed=3)),
    (make_invariant, dict(cells=13, seed=4)),
    (make_invariant, dict(cells=14, seed=5)),
    (make_invariant, dict(cells=15, seed=6)),
    (make_invariant, dict(cells=16, seed=7)),
    (make_invariant, dict(cells=17, seed=8)),
    (make_invariant, dict(cells=18, seed=9)),
    (make_invariant, dict(cells=19, seed=10)),
]

# The 16-formula sample: at least one per problem domain (paper §3).  The
# sample is what drives the Figure-3 feature correlation and the
# SEP_THOLD auto-selection, so it spans the fast EIJ region and the
# translation-explosion region.
_SAMPLE16_INDICES = {
    # indices into non_invariant_suite()
    "non_invariant": [0, 3, 8, 11, 14, 16, 18, 21, 23, 27, 29, 31, 33],
    # indices into invariant_suite()
    "invariant": [1, 5, 8],
}


def non_invariant_suite(valid: bool = True) -> List[Benchmark]:
    """The 39 non-invariant-checking benchmarks (Figures 4 and 6)."""
    return [
        factory(valid=valid, **kwargs) for factory, kwargs in _NON_INVARIANT
    ]


def invariant_suite(valid: bool = True) -> List[Benchmark]:
    """The 10 invariant-checking benchmarks (Figure 5)."""
    return [factory(valid=valid, **kwargs) for factory, kwargs in _INVARIANT]


def suite(valid: bool = True) -> List[Benchmark]:
    """All 49 benchmarks."""
    return non_invariant_suite(valid) + invariant_suite(valid)


def invalid_suite() -> List[Benchmark]:
    """Invalid mutants of every benchmark (for solver testing)."""
    return suite(valid=False)


def sample16() -> List[Benchmark]:
    """The 16-benchmark sample used for Figure 3 and SEP_THOLD selection."""
    non_inv = non_invariant_suite()
    inv = invariant_suite()
    out = [non_inv[i] for i in _SAMPLE16_INDICES["non_invariant"]]
    out += [inv[i] for i in _SAMPLE16_INDICES["invariant"]]
    return out


def benchmark_by_name(name: str, valid: bool = True) -> Optional[Benchmark]:
    """Look up one suite benchmark by its generated name."""
    for bench in suite(valid=valid):
        if bench.name == name:
            return bench
    return None
