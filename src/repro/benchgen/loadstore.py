"""Load-store-unit benchmarks (the paper's industrial LSU formulas).

A load searches the in-flight store queue youngest-first for an address
match and falls back to memory; pointer hypotheses constrain the queue's
head/tail window.  The obligation combines

* a *store-forwarding* equivalence — the search network rewritten with
  explicit priority guards must return the same data (EUF + equalities),
* *pointer window* lemmas — from the chained occupancy hypotheses
  ``head <= p1 <= ... <= tail`` conclude window facts such as
  ``head <= tail`` and ``head < tail + 1`` (separation predicates).

This gives the mixed equality/ordering profile the paper describes for the
LSU formulas.  ``valid=False`` corrupts one pointer conclusion by an
off-by-one.
"""

from __future__ import annotations

from ..logic import builders as b
from .base import Benchmark, BenchmarkFactory

__all__ = ["make_loadstore"]


def make_loadstore(
    entries: int = 3,
    pointers: int = 4,
    seed: int = 0,
    valid: bool = True,
    name: str = "",
) -> Benchmark:
    """Load-store unit benchmark.

    Parameters
    ----------
    entries:
        Store-queue entries searched by the forwarding network.
    pointers:
        Length of the queue-pointer occupancy chain.
    """
    factory = BenchmarkFactory(seed)
    mem = b.func("mem")
    laddr = b.const("laddr")
    saddrs = [b.const(factory.fresh("sa")) for _ in range(entries)]
    sdata = [b.const(factory.fresh("sv")) for _ in range(entries)]

    # Youngest-first forwarding network.
    impl = mem(laddr)
    for addr, data in reversed(list(zip(saddrs, sdata))):
        impl = b.ite(b.eq(laddr, addr), data, impl)

    # Priority-explicit network (guards make the cases exclusive).
    spec = mem(laddr)
    for i in reversed(range(entries)):
        guards = [b.eq(laddr, saddrs[i])]
        for j in range(i):
            guards.append(b.bnot(b.eq(laddr, saddrs[j])))
        spec = b.ite(b.band(*guards), sdata[i], spec)

    forwarding_ok = b.eq(impl, spec)

    # Pointer window: head <= p1 <= ... <= tail.
    ptrs = [b.const(factory.fresh("p")) for _ in range(pointers)]
    chain = [b.le(ptrs[i], ptrs[i + 1]) for i in range(pointers - 1)]
    head, tail = ptrs[0], ptrs[-1]
    window = [
        b.le(head, tail),
        b.lt(head, b.succ(tail)),
        b.bnot(b.lt(tail, head)),
    ]
    if not valid:
        # Off-by-one: claims strict emptiness ordering that need not hold.
        window.append(b.lt(head, tail))

    formula = b.band(
        forwarding_ok,
        b.implies(b.band(*chain), b.band(*window)),
    )

    return Benchmark(
        name=name or "loadstore_e%d_p%d_%d" % (entries, pointers, seed),
        domain="loadstore",
        formula=formula,
        expected_valid=valid,
        params={"entries": entries, "pointers": pointers, "seed": seed},
    )
