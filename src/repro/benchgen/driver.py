"""Device-driver safety benchmarks (BLAST temporal-safety flavoured).

The shape of the queries a software model checker emits when proving a
lock-discipline property along a path: Boolean program-counter facts, a
loop counter advanced with ``succ``, bounds carried through the loop, and a
couple of shallow uninterpreted functions abstracting the data state.

The generated obligation is a path-correctness query::

    path constraints (i1 = i0 + 1, i2 = i1 + 1, ..., ik < n, locks...)
      =>  safety (i_k <= n, lock state consistent, data preserved)

``valid=False`` weakens one path constraint so the final bound no longer
follows (the model checker would report this path as a counterexample).
"""

from __future__ import annotations

from ..logic import builders as b
from .base import Benchmark, BenchmarkFactory

__all__ = ["make_driver"]


def make_driver(
    steps: int = 4,
    seed: int = 0,
    valid: bool = True,
    name: str = "",
) -> Benchmark:
    """Path query with ``steps`` loop unrollings."""
    factory = BenchmarkFactory(seed)
    rng = factory.rng
    state_of = b.func("state_of")

    n = b.const("n")
    counters = [b.const(factory.fresh("i")) for _ in range(steps + 1)]
    locked = [b.bconst(factory.fresh("lk")) for _ in range(steps + 1)]

    hyps = []
    # Counter path: each step increments by one; the guard held on entry.
    for k in range(steps):
        hyps.append(b.eq(counters[k + 1], b.succ(counters[k])))
        hyps.append(b.lt(counters[k], n))
    # Lock discipline along the path: alternating acquire/release.
    for k in range(steps):
        if k % 2 == 0:
            hyps.append(b.iff(locked[k + 1], b.true()))
        else:
            hyps.append(b.iff(locked[k + 1], b.bnot(locked[k])))
    hyps.append(b.bnot(locked[0]))
    # Data state is only modified under the lock.
    d0, d1 = b.const("d0"), b.const("d1")
    hyps.append(b.implies(b.bnot(locked[1]), b.eq(state_of(d1), state_of(d0))))

    concl = [
        b.le(counters[-1], n),
        b.lt(counters[0], b.succ(n)),
    ]
    # The counter trace is strictly increasing along the whole path.
    for j in range(steps + 1):
        for k in range(j + 1, steps + 1):
            concl.append(b.lt(counters[j], counters[k]))
    # The counter advanced exactly `steps`: i_k = i_0 + steps.
    concl.append(b.eq(counters[-1], b.offset(counters[0], steps)))
    # Lock state at the end of the first acquire.
    concl.append(locked[1])
    if steps >= 2:
        concl.append(b.bnot(locked[2]))

    if not valid:
        # Claims one more iteration of progress than the path made.
        concl.append(b.lt(b.offset(counters[0], steps), counters[-1]))

    formula = b.implies(b.band(*hyps), b.band(*concl))
    return Benchmark(
        name=name or "driver_s%d_%d" % (steps, seed),
        domain="driver",
        formula=formula,
        expected_valid=valid,
        params={"steps": steps, "seed": seed},
    )
